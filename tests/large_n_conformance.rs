//! Release-mode guard for the catalog's largest colonies: every
//! `Tag::Large` scenario (n ≥ 1024, including the n = 4096 entries) must
//! keep building, running within its round budget, and reproducing
//! bit-identically across worker counts.
//!
//! The default `registry_conformance` suite already covers the whole
//! catalog; this file exists so CI can run the large-n subset in a
//! dedicated **release** job with more repro trials — large-n perf or
//! determinism regressions (the engine's hot path) then fail a
//! purpose-named job instead of hiding inside a long debug run. The
//! tests are
//! `#[ignore]`d by default to keep `cargo test` fast; CI invokes them
//! with `cargo test --release --test large_n_conformance -- --ignored`.

use house_hunting::prelude::*;
use std::time::Instant;

fn large_scenarios() -> Vec<Scenario> {
    let scenarios = registry::with_tag(Tag::Large);
    assert!(
        scenarios.iter().any(|s| s.n() >= 4096),
        "the catalog must keep an n >= 4096 scenario"
    );
    scenarios
}

#[test]
#[ignore = "release-mode CI job; run with -- --ignored"]
// The soft perf tripwire below is a deliberate wall-clock consumer —
// it measures the engine from outside and feeds nothing back into a
// simulation, so the workspace wall-clock ban does not apply.
#[allow(clippy::disallowed_methods)]
fn large_scenarios_run_within_budget() {
    for scenario in large_scenarios() {
        let start = Instant::now();
        let outcome = scenario
            .run(scenario.base_seed())
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", scenario.name()));
        assert!(
            outcome.rounds_run <= scenario.round_budget(),
            "{}: ran past its budget",
            scenario.name()
        );
        assert_eq!(
            outcome.solved.is_some(),
            scenario.expects_convergence(),
            "{}: convergence expectation violated",
            scenario.name()
        );
        // A soft perf tripwire: a large-n trial that takes minutes means
        // the engine lost an order of magnitude; the bound is generous
        // enough for slow CI machines.
        assert!(
            start.elapsed().as_secs() < 120,
            "{}: a single large-n trial took {:?}",
            scenario.name(),
            start.elapsed()
        );
    }
}

#[test]
#[ignore = "release-mode CI job; run with -- --ignored"]
fn large_scenarios_reproduce_bit_identically_across_worker_counts() {
    const TRIALS: usize = 4;
    for scenario in large_scenarios() {
        let serial = scenario
            .run_trials_with_workers(TRIALS, 1)
            .unwrap_or_else(|e| panic!("{}: serial trials failed: {e}", scenario.name()));
        for workers in [2usize, 4, 16] {
            let parallel = scenario
                .run_trials_with_workers(TRIALS, workers)
                .unwrap_or_else(|e| panic!("{}: parallel trials failed: {e}", scenario.name()));
            assert_eq!(
                serial,
                parallel,
                "{}: outcomes diverged between 1 and {workers} workers",
                scenario.name()
            );
        }
    }
}

#[test]
#[ignore = "release-mode CI job; run with -- --ignored"]
fn large_scenarios_match_the_scalar_oracle() {
    // The SoA engine against the scalar distribution-identity oracle at
    // the colony sizes the SoA layout exists for: equal seeds must give
    // bit-identical outcomes at n >= 1024 (including both n = 4096
    // entries), serial and chunked alike.
    const TRIALS: usize = 2;
    for scenario in large_scenarios() {
        let oracle = scenario
            .clone()
            .engine(EngineKind::Scalar)
            .run_trials_with_workers(TRIALS, 2)
            .unwrap_or_else(|e| panic!("{}: scalar trials failed: {e}", scenario.name()));
        for threads in [1usize, 8] {
            let soa = scenario
                .clone()
                .engine(EngineKind::Soa)
                .round_threads(threads)
                .run_trials_with_workers(TRIALS, 2)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: SoA trials ({threads} round threads) failed: {e}",
                        scenario.name()
                    )
                });
            assert_eq!(
                oracle,
                soa,
                "{}: SoA engine at {threads} round threads diverged from the scalar oracle",
                scenario.name()
            );
        }
    }
}

#[test]
#[ignore = "release-mode CI job; run with -- --ignored"]
fn large_uniform_colony_agent_columns_match_the_scalar_oracle() {
    // The n = 4096 catalog entries run optimal ants, which the batched
    // agent-state table does not cover; this row holds the table path
    // itself to the oracle at a size past every catalog colony.
    let n = 8192;
    let seed = 97;
    let build = |engine: EngineKind, threads: usize| {
        let config = ColonyConfig::new(n, QualitySpec::good_prefix(6, 3)).seed(seed);
        let env = Environment::new(&config).expect("env builds");
        Simulation::new(env, colony::simple(n, seed))
            .expect("sim builds")
            .with_engine(engine)
            .with_round_threads(threads)
    };
    let rule = ConvergenceRule::stable_commitment(2);
    let mut oracle = build(EngineKind::Scalar, 1);
    let expected = oracle
        .run_to_convergence(rule, 20_000)
        .expect("oracle runs");
    assert!(
        expected.solved.is_some(),
        "n = 8192 simple colony converges"
    );
    for threads in [1usize, 8] {
        let mut soa = build(EngineKind::Soa, threads);
        assert!(
            soa.uses_agent_columns(),
            "a uniform simple colony must engage the agent-state table"
        );
        let outcome = soa.run_to_convergence(rule, 20_000).expect("SoA runs");
        assert_eq!(
            expected, outcome,
            "agent-column path diverged from the scalar oracle at \
             {threads} round threads (n = {n})"
        );
        assert_eq!(oracle.role_census(), soa.role_census());
        assert_eq!(oracle.env().counts(), soa.env().counts());
    }
}

#[test]
#[ignore = "release-mode CI job; run with -- --ignored"]
fn large_scenarios_reproduce_bit_identically_across_round_threads() {
    // Intra-round parallelism at the sizes it exists for: the n >= 1024
    // catalog entries must be bit-identical between the serial engine
    // and every chunked thread count.
    const TRIALS: usize = 2;
    for scenario in large_scenarios() {
        let serial = scenario
            .clone()
            .round_threads(1)
            .run_trials_with_workers(TRIALS, 2)
            .unwrap_or_else(|e| panic!("{}: serial trials failed: {e}", scenario.name()));
        for threads in [2usize, 4, 8] {
            let threaded = scenario
                .clone()
                .round_threads(threads)
                .run_trials_with_workers(TRIALS, 2)
                .unwrap_or_else(|e| panic!("{}: threaded trials failed: {e}", scenario.name()));
            assert_eq!(
                serial,
                threaded,
                "{}: outcomes diverged between 1 and {threads} round threads",
                scenario.name()
            );
        }
    }
}
