//! Property-based tests on the agents: every built-in algorithm emits
//! only legal actions for arbitrary instance shapes and seeds, and the
//! full stack is deterministic.

use house_hunting::prelude::*;
use proptest::prelude::*;

/// Drives a colony manually, asserting every chosen action passes the
/// environment's legality check before execution.
fn assert_always_legal(
    n: usize,
    spec: QualitySpec,
    seed: u64,
    mut agents: Colony,
    rounds: u64,
    reveal: bool,
) -> Result<(), TestCaseError> {
    let mut config = ColonyConfig::new(n, spec).seed(seed);
    if reveal {
        config = config.reveal_quality_on_go();
    }
    let mut env = Environment::new(&config).unwrap();
    for round in 1..=rounds {
        let actions: Vec<Action> = agents.iter_mut().map(|agent| agent.choose(round)).collect();
        for (i, action) in actions.iter().enumerate() {
            prop_assert!(
                env.check_action(AntId::new(i), action).is_ok(),
                "round {round}: {} chose illegal {action}",
                agents[i].label()
            );
        }
        let report = env.step(&actions).unwrap();
        for (agent, outcome) in agents.iter_mut().zip(&report.outcomes) {
            agent.observe(round, outcome);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimal_ants_always_act_legally(
        n in 1usize..48,
        k in 1usize..6,
        good in 0usize..6,
        seed in any::<u64>(),
    ) {
        let good = good.clamp(1, k);
        assert_always_legal(
            n,
            QualitySpec::good_prefix(k, good),
            seed,
            colony::optimal(n),
            60,
            false,
        )?;
    }

    #[test]
    fn simple_ants_always_act_legally(
        n in 1usize..48,
        k in 1usize..6,
        good in 0usize..6,
        seed in any::<u64>(),
        hardened in any::<bool>(),
    ) {
        let good = good.clamp(1, k);
        let options = if hardened { UrnOptions::hardened() } else { UrnOptions::paper() };
        assert_always_legal(
            n,
            QualitySpec::good_prefix(k, good),
            seed,
            colony::simple_with_options(n, seed, options),
            60,
            hardened,
        )?;
    }

    #[test]
    fn adaptive_and_quality_ants_always_act_legally(
        n in 1usize..48,
        k in 1usize..5,
        seed in any::<u64>(),
        gamma in 0.0f64..4.0,
    ) {
        assert_always_legal(
            n,
            QualitySpec::all_good(k),
            seed,
            colony::adaptive(n, seed),
            60,
            false,
        )?;
        assert_always_legal(
            n,
            QualitySpec::all_good(k),
            seed,
            colony::quality(n, seed, gamma),
            60,
            true,
        )?;
    }

    #[test]
    fn spreaders_always_act_legally(
        n in 1usize..48,
        seed in any::<u64>(),
        strategy_pick in 0usize..3,
    ) {
        let strategy = match strategy_pick {
            0 => SpreadStrategy::WaitAtHome,
            1 => SpreadStrategy::SearchForever,
            _ => SpreadStrategy::Hybrid { search_probability: 0.5 },
        };
        assert_always_legal(
            n,
            QualitySpec::single_good(3, 2),
            seed,
            colony::spreaders(n, seed, strategy),
            60,
            false,
        )?;
    }

    /// Byzantine agents are still model-bound: their chosen actions are
    /// legal even though their goals are adversarial.
    #[test]
    fn adversaries_always_act_legally(
        n in 4usize..32,
        seed in any::<u64>(),
        byz in 1usize..4,
    ) {
        use house_hunting::core::{AnyAgent, BadNestRecruiter, OscillatorAnt};
        let mut agents = colony::simple(n, seed);
        colony::plant_adversaries(&mut agents, byz, |slot| {
            if slot % 2 == 0 {
                AnyAgent::from(BadNestRecruiter::new())
            } else {
                AnyAgent::from(OscillatorAnt::new())
            }
        });
        assert_always_legal(
            n,
            QualitySpec::good_prefix(3, 2),
            seed,
            agents,
            60,
            false,
        )?;
    }

    /// The colony's SoA snapshot columns never drift from the agents
    /// they cache: after **every** executed round — under arbitrary
    /// interleavings of the engine's entry points (materializing,
    /// eliding, and multi-round stepping, which exercise the chunked
    /// phases in all their modes) — each column row reassembles to
    /// exactly the [`AgentSnapshot`] recomputed from the live agent, for
    /// honest, idle, and Byzantine colony mixes alike.
    #[test]
    fn soa_columns_stay_in_sync_with_agent_snapshots(
        n in 2usize..48,
        seed in any::<u64>(),
        mix_pick in 0usize..3,
        threads in 1usize..9,
        ops in proptest::collection::vec(0usize..3, 1..12),
    ) {
        use house_hunting::core::{AgentSnapshot, AnyAgent, BadNestRecruiter, OscillatorAnt};

        let mut agents = colony::simple(n, seed);
        match mix_pick {
            1 => colony::plant_idlers(&mut agents, n / 4),
            2 => colony::plant_adversaries(&mut agents, (n / 8).max(1), |slot| {
                if slot % 2 == 0 {
                    AnyAgent::from(BadNestRecruiter::new())
                } else {
                    AnyAgent::from(OscillatorAnt::new())
                }
            }),
            _ => {}
        }
        let mut sim = ScenarioSpec::new(n, QualitySpec::good_prefix(3, 2))
            .seed(seed)
            .build_simulation(agents)
            .unwrap()
            .with_round_threads(threads);
        for &op in &ops {
            match op {
                0 => { sim.step().unwrap(); }
                1 => { sim.step_in_place().unwrap(); }
                _ => {
                    sim.run_to_convergence(ConvergenceRule::commitment(), 3).unwrap();
                }
            }
            // `colony()`/`agents()` take `&mut self` since the lazy-scatter
            // seam (they force a table → agent sync), so collect owned data
            // in separate scopes before comparing.
            let round = sim.round();
            let cached: Vec<_> = {
                let columns = sim.colony().snapshot_columns();
                prop_assert_eq!(columns.len(), n);
                (0..n)
                    .map(|idx| {
                        (
                            columns.get(idx),
                            columns.role(idx),
                            columns.committed(idx),
                            columns.honest(idx),
                            columns.is_final(idx),
                        )
                    })
                    .collect()
            };
            let live: Vec<_> = sim
                .agents()
                .iter()
                .map(|agent| (AgentSnapshot::of(agent), agent.label().to_string()))
                .collect();
            for (idx, ((cached, role, committed, honest, is_final), (live, label))) in
                cached.into_iter().zip(&live).enumerate()
            {
                prop_assert_eq!(
                    &cached, live,
                    "after round {}: column row {} drifted from its agent ({})",
                    round, idx, label
                );
                // The single-column reads agree with the assembled row.
                prop_assert_eq!(role, live.role);
                prop_assert_eq!(committed, live.committed);
                prop_assert_eq!(honest, live.honest);
                prop_assert_eq!(is_final, live.is_final);
                // A committed nest is always one the environment says the
                // ant knows — the commitment column can only name rows of
                // the ant's candidate set.
                if live.honest {
                    if let Some(nest) = live.committed {
                        prop_assert!(
                            sim.env().knows(AntId::new(idx), nest),
                            "ant {} committed to unknown nest {}", idx, nest
                        );
                    }
                }
            }
        }
    }

    /// Same seeds ⇒ identical outcome through the whole stack, including
    /// the perturbed executor.
    #[test]
    fn perturbed_stack_is_deterministic(seed in any::<u64>(), delay in 0.0f64..0.3) {
        use house_hunting::model::faults::{CrashPlan, CrashStyle, DelayPlan};
        let n = 24;
        let build = || {
            ScenarioSpec::new(n, QualitySpec::good_prefix(3, 2))
                .seed(seed)
                .perturbations(Perturbations {
                    crash: CrashPlan::fraction(n, 0.1, 5, CrashStyle::InPlace, seed),
                    delay: DelayPlan::new(delay, seed),
                })
                .build_simulation(colony::simple(n, seed))
                .unwrap()
        };
        let a = build().run_to_convergence(ConvergenceRule::stable_commitment(4), 400).unwrap();
        let b = build().run_to_convergence(ConvergenceRule::stable_commitment(4), 400).unwrap();
        prop_assert_eq!(a.solved, b.solved);
        prop_assert_eq!(a.rounds_run, b.rounds_run);
        prop_assert_eq!(a.replaced_actions, b.replaced_actions);
    }
}
