//! Registry conformance: every catalog scenario is held to the same
//! contract, so adding a scenario automatically adds its tests.
//!
//! For **every** entry of `hh_sim::registry::all_scenarios()` this
//! harness asserts that the scenario
//!
//! 1. *builds* — spec and colony materialize into a runnable simulation
//!    of the advertised size and composition;
//! 2. *runs to its declared budget* — executes under its own convergence
//!    rule without harness errors, converging iff it declares so;
//! 3. *reproduces bit-identically* — the same seed yields identical
//!    trial outcomes across worker-thread counts and repeated runs;
//! 4. *matches its declared tags* — the hand-declared catalog tags agree
//!    with the tags derived from the axes.

use std::collections::BTreeSet;

use house_hunting::prelude::*;
use house_hunting::sim::registry::{self, ColonyMix};

/// Trials per scenario for the reproducibility checks (kept small: the
/// full catalog spans colonies up to 4096 ants).
const REPRO_TRIALS: usize = 3;

#[test]
fn catalog_is_nonempty_and_uniquely_named() {
    let scenarios = registry::all_scenarios();
    assert!(
        scenarios.len() >= 12,
        "the catalog shrank to {} scenarios",
        scenarios.len()
    );
    let names: BTreeSet<_> = scenarios.iter().map(|s| s.name().to_string()).collect();
    assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
    for scenario in &scenarios {
        assert!(!scenario.name().is_empty());
        assert!(
            !scenario.summary_text().is_empty(),
            "{}: catalog entries must carry a summary",
            scenario.name()
        );
        assert_eq!(
            registry::lookup(scenario.name())
                .as_ref()
                .map(Scenario::name),
            Some(scenario.name()),
            "lookup must find every catalog entry"
        );
    }
}

#[test]
fn every_scenario_builds_the_advertised_colony() {
    for scenario in registry::all_scenarios() {
        let seed = scenario.base_seed();
        let spec = scenario.spec_for(seed);
        assert_eq!(spec.config().n(), scenario.n(), "{}", scenario.name());
        let env = spec
            .build_environment()
            .unwrap_or_else(|e| panic!("{}: environment failed: {e}", scenario.name()));
        assert_eq!(env.n(), scenario.n(), "{}", scenario.name());
        assert_eq!(env.k(), scenario.k(), "{}", scenario.name());

        let colony = scenario.colony_for(seed);
        assert_eq!(colony.len(), scenario.n(), "{}", scenario.name());
        match scenario.mix() {
            ColonyMix::Uniform(algorithm) => {
                assert!(
                    colony.iter().all(|a| a.label() == algorithm.label()),
                    "{}: uniform colony mixes labels",
                    scenario.name()
                );
            }
            ColonyMix::IdleFraction { .. } => {
                let idlers = colony.iter().filter(|a| a.label() == "idler").count();
                let expected = scenario.mix().planted_count(scenario.n());
                assert_eq!(idlers, expected, "{}: idler head-count", scenario.name());
                assert!(colony.iter().all(|a| a.is_honest()));
            }
            ColonyMix::Byzantine { .. } => {
                let planted = colony.iter().filter(|a| !a.is_honest()).count();
                assert_eq!(
                    planted,
                    scenario.mix().planted_count(scenario.n()),
                    "{}: adversary count",
                    scenario.name()
                );
            }
            ColonyMix::Heterogeneous { a, b, .. } => {
                let labels: BTreeSet<_> = colony.iter().map(|agent| agent.label()).collect();
                assert!(
                    labels.contains(a.label()) && labels.contains(b.label()),
                    "{}: heterogeneous colony lost a sub-colony",
                    scenario.name()
                );
            }
            other => panic!("{}: unknown mix {other:?}", scenario.name()),
        }

        // The simulation itself must assemble.
        scenario
            .build(seed)
            .unwrap_or_else(|e| panic!("{}: build failed: {e}", scenario.name()));
    }
}

#[test]
fn every_scenario_runs_to_its_declared_budget() {
    for scenario in registry::all_scenarios() {
        let outcome = scenario
            .run(scenario.base_seed())
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", scenario.name()));
        assert!(
            outcome.rounds_run <= scenario.round_budget(),
            "{}: ran past its budget",
            scenario.name()
        );
        if scenario.expects_convergence() {
            assert!(
                outcome.solved.is_some(),
                "{}: expected convergence within {} rounds, ran {}",
                scenario.name(),
                scenario.round_budget(),
                outcome.rounds_run
            );
        } else {
            assert!(
                outcome.solved.is_none(),
                "{}: declared non-converging but solved",
                scenario.name()
            );
            assert_eq!(
                outcome.rounds_run,
                scenario.round_budget(),
                "{}: a non-converging scenario must exhaust its budget",
                scenario.name()
            );
        }
        // Honest colonies never trip the illegal-action sandbox.
        let has_adversaries = matches!(scenario.mix(), ColonyMix::Byzantine { .. });
        if !has_adversaries {
            assert_eq!(
                outcome.illegal_actions,
                0,
                "{}: honest agents acted illegally",
                scenario.name()
            );
        }
    }
}

#[test]
fn every_scenario_reproduces_bit_identically_across_worker_counts() {
    for scenario in registry::all_scenarios() {
        let serial = scenario
            .run_trials_with_workers(REPRO_TRIALS, 1)
            .unwrap_or_else(|e| panic!("{}: serial trials failed: {e}", scenario.name()));
        assert_eq!(serial.len(), REPRO_TRIALS);
        for workers in [2usize, 8] {
            let parallel = scenario
                .run_trials_with_workers(REPRO_TRIALS, workers)
                .unwrap_or_else(|e| panic!("{}: parallel trials failed: {e}", scenario.name()));
            assert_eq!(
                serial,
                parallel,
                "{}: outcomes diverged between 1 and {workers} workers",
                scenario.name()
            );
        }
    }
}

/// Intra-round thread counts every scenario must reproduce across. The
/// CI thread matrix extends the set through `HH_ROUND_THREADS`, so the
/// determinism contract is enforced at the matrix's count on every push.
fn round_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(matrix) = std::env::var("HH_ROUND_THREADS") {
        // Fail loudly on a malformed value: a typo in the CI matrix must
        // not silently turn the dedicated thread-matrix leg into a
        // duplicate of the default set.
        let threads: usize = matrix
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("HH_ROUND_THREADS={matrix:?} is not a thread count: {e}"));
        if !counts.contains(&threads) {
            counts.push(threads);
        }
    }
    counts
}

#[test]
fn every_scenario_is_bit_identical_across_round_threads() {
    for scenario in registry::all_scenarios() {
        let serial = scenario
            .clone()
            .round_threads(1)
            .run_trials_with_workers(REPRO_TRIALS, 2)
            .unwrap_or_else(|e| panic!("{}: serial trials failed: {e}", scenario.name()));
        for &threads in round_thread_counts().iter().skip(1) {
            let threaded = scenario
                .clone()
                .round_threads(threads)
                .run_trials_with_workers(REPRO_TRIALS, 2)
                .unwrap_or_else(|e| {
                    panic!("{}: {threads}-thread trials failed: {e}", scenario.name())
                });
            assert_eq!(
                serial,
                threaded,
                "{}: outcomes diverged between 1 and {threads} round threads",
                scenario.name()
            );
        }
    }
}

#[test]
fn every_scenario_matches_its_declared_tags() {
    for scenario in registry::all_scenarios() {
        assert_eq!(
            scenario.tags(),
            scenario.derived_tags(),
            "{}: declared tags disagree with the axes",
            scenario.name()
        );
    }
}

#[test]
fn tag_filters_partition_the_catalog_along_each_axis() {
    let total = registry::all_scenarios().len();
    for axis in [
        // Quality axis.
        vec![
            Tag::AllGood,
            Tag::GoodPrefix,
            Tag::SingleGood,
            Tag::Tie,
            Tag::NonBinary,
        ],
        // Fault axis.
        vec![Tag::Clean, Tag::Crash, Tag::Delay, Tag::MixedFaults],
        // Mix axis.
        vec![Tag::Uniform, Tag::Idle, Tag::Byzantine, Tag::Hetero],
        // Size axis.
        vec![Tag::Tiny, Tag::Small, Tag::Medium, Tag::Large],
    ] {
        let covered: usize = axis.iter().map(|&tag| registry::with_tag(tag).len()).sum();
        assert_eq!(
            covered, total,
            "axis {axis:?} does not partition the catalog"
        );
    }
}
