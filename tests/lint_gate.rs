//! Tier-1 gate for the workspace determinism-and-soundness analyzer:
//! shells `cargo run -p hh_lint -- --workspace --docs`, so any rule
//! violation anywhere in the tree — stray `unsafe`, an order-unstable
//! container in an engine crate, an unjustified atomic ordering, a
//! stale EXPERIMENTS.md index — fails `cargo test -q`. See
//! `crates/lint/src/lib.rs` for the contract the rules encode.

use std::process::Command;

#[test]
fn workspace_passes_hh_lint() {
    let root = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .current_dir(root)
        .args([
            "run",
            "--quiet",
            "-p",
            "hh_lint",
            "--",
            "--workspace",
            "--docs",
        ])
        .output()
        .expect("spawn `cargo run -p hh_lint`");
    assert!(
        output.status.success(),
        "hh_lint found violations (run `cargo run -p hh_lint -- --workspace --docs`):\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}
