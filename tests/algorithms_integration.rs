//! Integration: both of the paper's algorithms solve HouseHunting through
//! the full stack (facade → sim → core → model).

use house_hunting::prelude::*;

fn solve(
    n: usize,
    spec: QualitySpec,
    seed: u64,
    agents: Colony,
    rule: ConvergenceRule,
    max_rounds: u64,
) -> Option<Solved> {
    ScenarioSpec::new(n, spec)
        .seed(seed)
        .build_simulation(agents)
        .unwrap()
        .run_to_convergence(rule, max_rounds)
        .unwrap()
        .solved
}

#[test]
fn optimal_solves_across_seeds_and_shapes() {
    for seed in 0..6 {
        for (n, k, good) in [(32usize, 2usize, 1usize), (64, 4, 2), (96, 6, 3)] {
            let solved = solve(
                n,
                QualitySpec::good_prefix(k, good),
                seed,
                colony::optimal(n),
                ConvergenceRule::all_final(),
                5_000,
            )
            .unwrap_or_else(|| panic!("optimal stuck: n={n} k={k} seed={seed}"));
            assert!(solved.good);
            assert!(solved.nest.raw() <= good, "winner must be a good nest");
        }
    }
}

#[test]
fn simple_solves_across_seeds_and_shapes() {
    for seed in 0..6 {
        for (n, k, good) in [(32usize, 2usize, 1usize), (64, 4, 2), (96, 6, 3)] {
            let solved = solve(
                n,
                QualitySpec::good_prefix(k, good),
                seed,
                colony::simple(n, seed),
                ConvergenceRule::commitment(),
                20_000,
            )
            .unwrap_or_else(|| panic!("simple stuck: n={n} k={k} seed={seed}"));
            assert!(solved.good);
        }
    }
}

#[test]
fn bad_nests_never_win_without_noise() {
    for seed in 0..10 {
        let solved = solve(
            48,
            QualitySpec::good_prefix(6, 2),
            seed,
            colony::simple(48, seed),
            ConvergenceRule::commitment(),
            20_000,
        )
        .expect("solves");
        assert!(solved.nest.raw() <= 2, "bad nest {} won", solved.nest);
    }
}

#[test]
fn settled_simple_colony_reaches_location_consensus() {
    let n = 40;
    let agents = colony::simple_with_options(
        n,
        5,
        UrnOptions {
            settle_at_full_count: true,
            ..UrnOptions::default()
        },
    );
    let solved = solve(
        n,
        QualitySpec::all_good(3),
        5,
        agents,
        ConvergenceRule::location(10),
        20_000,
    )
    .expect("settled colony parks at the winner");
    assert!(solved.good);
}

#[test]
fn single_ant_colony_solves_single_nest() {
    // Degenerate but legal: one ant, one good nest.
    let solved = solve(
        1,
        QualitySpec::all_good(1),
        0,
        colony::optimal(1),
        ConvergenceRule::all_final(),
        50,
    )
    .expect("lone ant finalizes");
    assert_eq!(solved.nest, NestId::candidate(1));
}

#[test]
fn full_stack_determinism() {
    let run = |_: ()| {
        solve(
            64,
            QualitySpec::good_prefix(4, 2),
            123,
            colony::simple(64, 123),
            ConvergenceRule::commitment(),
            20_000,
        )
    };
    assert_eq!(run(()), run(()));
}

#[test]
fn trial_runner_aggregates_across_threads() {
    use house_hunting::sim::{run_trials, success_rate};
    let outcomes = run_trials(16, 20_000, ConvergenceRule::commitment(), |trial| {
        let seed = 9_000 + trial as u64;
        ScenarioSpec::new(32, QualitySpec::good_prefix(3, 1))
            .seed(seed)
            .build_simulation(colony::simple(32, seed))
    })
    .unwrap();
    assert_eq!(outcomes.len(), 16);
    assert!(success_rate(&outcomes) > 0.85);
    // Winner is always the unique good nest.
    for outcome in &outcomes {
        if let Some(solved) = &outcome.solved {
            assert_eq!(solved.nest, NestId::candidate(1));
        }
    }
}

#[test]
fn optimal_beats_lower_bound_floor() {
    // Sanity: even the optimal algorithm respects Ω(log n): at n = 256 it
    // cannot finish in fewer than log4(256)/2 = 4 rounds.
    for seed in 0..5 {
        let solved = solve(
            256,
            QualitySpec::single_good(2, 1),
            seed,
            colony::optimal(256),
            ConvergenceRule::all_final(),
            5_000,
        )
        .expect("solves");
        assert!(
            solved.round >= 4,
            "round {} beats the lower bound",
            solved.round
        );
    }
}
