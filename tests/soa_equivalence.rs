//! SoA ↔ scalar distribution identity over the whole scenario catalog.
//!
//! The executor ships two renderings of the same round semantics: the
//! struct-of-arrays fast path (`EngineKind::Soa` — fused column passes,
//! batched per-ant RNG draws, optional intra-round chunking) and the
//! scalar oracle (`EngineKind::Scalar` — one match-per-ant pass per
//! phase, always serial). This harness holds them **bit-identical**, not
//! just statistically close: for every catalog scenario and equal seeds,
//!
//! 1. the [`RunOutcome`]s agree exactly (solved round/nest, rounds run,
//!    replaced/illegal action counters);
//! 2. the round-by-round census tallies agree exactly — true nest
//!    populations, honest commitment histograms, role census — checked
//!    in lockstep after every round so a divergence names the first
//!    round it appears in;
//! 3. the SoA engine's agreement with the oracle survives every
//!    intra-round thread count the determinism contract covers
//!    ({1, 2, 8}, plus the CI thread matrix via `HH_ROUND_THREADS`).
//!
//! Scenarios with fault schedules route both engines through the same
//! serial bookkeeping path, so their rows hold trivially; they stay in
//! the sweep anyway — the suite's contract is "the whole catalog", and
//! the rows are cheap insurance against a future engine split.

use house_hunting::prelude::*;
use house_hunting::sim::registry;

/// Trials per scenario for the run-outcome checks (matches the registry
/// conformance suite; the catalog spans colonies up to 4096 ants).
const REPRO_TRIALS: usize = 3;

/// Rounds compared in the lockstep census walk. Convergence for most
/// catalog entries happens within this window; past it the walk has
/// already compared every phase transition the engines disagree on
/// first, and the full-run outcome tests cover the tail.
const LOCKSTEP_ROUNDS: u64 = 96;

/// Intra-round thread counts the SoA engine must match the oracle at.
/// Mirrors `registry_conformance::round_thread_counts`, including the CI
/// thread-matrix extension.
fn round_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(matrix) = std::env::var("HH_ROUND_THREADS") {
        let threads: usize = matrix
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("HH_ROUND_THREADS={matrix:?} is not a thread count: {e}"));
        if !counts.contains(&threads) {
            counts.push(threads);
        }
    }
    counts
}

#[test]
fn soa_is_the_default_engine() {
    let scenario = registry::all_scenarios().remove(0);
    assert_eq!(scenario.engine_kind(), EngineKind::Soa);
    let sim = scenario.build(scenario.base_seed()).expect("builds");
    assert_eq!(sim.engine(), EngineKind::Soa);
    let scalar = scenario.clone().engine(EngineKind::Scalar);
    assert_eq!(scalar.engine_kind(), EngineKind::Scalar);
    assert_eq!(
        scalar.build(scalar.base_seed()).expect("builds").engine(),
        EngineKind::Scalar
    );
}

#[test]
fn every_scenario_runs_identically_on_scalar_and_soa() {
    for scenario in registry::all_scenarios() {
        let oracle = scenario
            .clone()
            .engine(EngineKind::Scalar)
            .run_trials_with_workers(REPRO_TRIALS, 2)
            .unwrap_or_else(|e| panic!("{}: scalar trials failed: {e}", scenario.name()));
        assert_eq!(oracle.len(), REPRO_TRIALS);
        for &threads in &round_thread_counts() {
            let soa = scenario
                .clone()
                .engine(EngineKind::Soa)
                .round_threads(threads)
                .run_trials_with_workers(REPRO_TRIALS, 2)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: SoA trials ({threads} round threads) failed: {e}",
                        scenario.name()
                    )
                });
            assert_eq!(
                oracle,
                soa,
                "{}: SoA engine at {threads} round threads diverged from the scalar oracle",
                scenario.name()
            );
        }
    }
}

#[test]
fn every_scenario_census_matches_round_by_round() {
    for scenario in registry::all_scenarios() {
        let seed = scenario.base_seed();
        let mut scalar = scenario
            .clone()
            .engine(EngineKind::Scalar)
            .build(seed)
            .unwrap_or_else(|e| panic!("{}: scalar build failed: {e}", scenario.name()));
        let mut soa = scenario
            .clone()
            .engine(EngineKind::Soa)
            .round_threads(2)
            .build(seed)
            .unwrap_or_else(|e| panic!("{}: SoA build failed: {e}", scenario.name()));
        let rounds = LOCKSTEP_ROUNDS.min(scenario.round_budget());
        for round in 1..=rounds {
            let scalar_report = scalar.step().unwrap_or_else(|e| {
                panic!("{}: scalar round {round} failed: {e}", scenario.name())
            });
            let soa_report = soa
                .step()
                .unwrap_or_else(|e| panic!("{}: SoA round {round} failed: {e}", scenario.name()));
            assert_eq!(
                scalar_report,
                soa_report,
                "{}: step reports diverged at round {round}",
                scenario.name()
            );
            assert_eq!(
                RoundSnapshot::capture(&scalar),
                RoundSnapshot::capture(&soa),
                "{}: census tallies diverged at round {round}",
                scenario.name()
            );
            assert_eq!(
                scalar.env().counts(),
                soa.env().counts(),
                "{}: nest populations diverged at round {round}",
                scenario.name()
            );
        }
        assert_eq!(
            scalar.env().locations(),
            soa.env().locations(),
            "{}: ant locations diverged after the lockstep walk",
            scenario.name()
        );
        assert_eq!(
            (scalar.replaced_actions(), scalar.illegal_actions()),
            (soa.replaced_actions(), soa.illegal_actions()),
            "{}: sandbox counters diverged after the lockstep walk",
            scenario.name()
        );
    }
}

/// Regression: the quorum NaN sanitization must survive the narrowed
/// outcome types (u32 counts, f32-backed qualities). The detector's
/// threshold arithmetic runs in f64 over tallies that now originate
/// from narrowed fields; a hand-built NaN-fraction rule must still snap
/// to the simple majority — on **both** engines, with identical
/// detections.
#[test]
fn quorum_nan_sanitization_survives_narrowed_types() {
    let scenario = registry::lookup("idle-quarter-128").expect("idle-quarter-128 is registered");
    let seed = scenario.base_seed();
    let run = |engine: EngineKind, rule: ConvergenceRule| {
        scenario
            .clone()
            .engine(engine)
            .rule(rule)
            .run(seed)
            .expect("runs")
    };
    let nan_rule = ConvergenceRule::Quorum {
        fraction: f64::NAN,
        stable_rounds: 1,
    };
    let majority_rule = ConvergenceRule::quorum(0.5, 1);
    let scalar_nan = run(EngineKind::Scalar, nan_rule);
    let soa_nan = run(EngineKind::Soa, nan_rule);
    let majority = run(EngineKind::Soa, majority_rule);
    assert_eq!(scalar_nan, soa_nan, "engines disagree under the NaN rule");
    assert_eq!(
        soa_nan, majority,
        "NaN fraction must sanitize to the simple majority"
    );
    assert!(
        soa_nan.solved.is_some(),
        "the idle colony reaches a majority"
    );
}

/// The chunk split must not leak into results even when the split is
/// degenerate: every bound vector here produces the same execution as
/// the serial oracle (the property suite drives randomized splits; these
/// are the canonical adversarial shapes, pinned).
#[test]
fn adversarial_chunk_bounds_match_the_scalar_oracle() {
    let scenario = registry::lookup("baseline-128").expect("baseline-128 is in the catalog");
    let seed = scenario.base_seed();
    let n = scenario.n();
    let rule = scenario.convergence_rule();
    let budget = scenario.round_budget();
    let mut oracle = scenario
        .clone()
        .engine(EngineKind::Scalar)
        .build(seed)
        .expect("oracle builds");
    let expected = oracle
        .run_to_convergence(rule, budget)
        .expect("oracle runs");

    // Width-1 head chunks, an n-1 cut, and a prime stride.
    let mut bounds_sets: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3, n], vec![0, n - 1, n]];
    let mut prime = vec![0];
    let mut at = 0;
    while at + 7 < n && prime.len() < 15 {
        at += 7;
        prime.push(at);
    }
    prime.push(n);
    bounds_sets.push(prime);
    for bounds in bounds_sets {
        let mut sim = scenario
            .build(seed)
            .expect("SoA builds")
            .with_chunk_bounds(bounds.clone());
        assert!(
            sim.uses_agent_columns(),
            "baseline-128 is a uniform simple colony: the batched \
             agent-state table must engage"
        );
        let outcome = sim.run_to_convergence(rule, budget).expect("SoA runs");
        assert_eq!(
            expected, outcome,
            "chunk bounds {bounds:?} diverged from the scalar oracle"
        );
    }
}

/// The batched agent-state table engages exactly for homogeneous
/// colonies: uniform simple/adaptive mixes (idlers included) and — since
/// the dense-row extension — uniform optimal/quality/spreader colonies
/// qualify; heterogeneous and Byzantine mixes fall back to the
/// `AnyAgent` path.
#[test]
fn agent_columns_engage_for_homogeneous_catalog_entries() {
    let expectations = [
        ("baseline-128", true),
        ("idle-quarter-128", true),
        ("optimal-1024", true),
        ("mega-colony-4096", true),
        ("quality-tie-128", true),
        ("spreader-rumor-512", true),
        ("hetero-simple-adaptive-256", false),
        ("byzantine-handful-96", false),
    ];
    for (name, batched) in expectations {
        let scenario = registry::lookup(name).unwrap_or_else(|| panic!("{name} is registered"));
        let sim = scenario
            .build(scenario.base_seed())
            .unwrap_or_else(|e| panic!("{name} builds: {e}"));
        assert_eq!(
            sim.uses_agent_columns(),
            batched,
            "{name}: unexpected agent-column engagement"
        );
    }
}

/// A colony containing boxed `Custom` agents defeats the homogeneity
/// detection by construction (the concrete type is erased), so the
/// engine must fall back to the `AnyAgent` path — and stay bit-identical
/// to the scalar oracle there, at every covered thread count.
#[test]
fn custom_boxed_agents_fall_back_bit_identically() {
    let n = 96;
    let seed = 4242;
    let build = |engine: EngineKind, threads: usize| {
        let mut agents = colony::simple(n, seed);
        // Behaviourally ordinary simple ants, but boxed: same rounds,
        // different static type.
        agents.replace(17, AnyAgent::custom(SimpleAnt::new(n, 9_000_017)));
        agents.replace(63, AnyAgent::custom(SimpleAnt::new(n, 9_000_063)));
        let config = ColonyConfig::new(n, QualitySpec::good_prefix(4, 2)).seed(seed);
        let env = Environment::new(&config).expect("env builds");
        Simulation::new(env, agents)
            .expect("sim builds")
            .with_engine(engine)
            .with_round_threads(threads)
    };
    let rule = ConvergenceRule::stable_commitment(2);
    let mut oracle = build(EngineKind::Scalar, 1);
    assert!(!oracle.uses_agent_columns());
    let expected = oracle
        .run_to_convergence(rule, 10_000)
        .expect("oracle runs");
    for threads in [1usize, 2, 8] {
        let mut soa = build(EngineKind::Soa, threads);
        assert!(
            !soa.uses_agent_columns(),
            "boxed custom agents must force the AnyAgent fallback"
        );
        let outcome = soa.run_to_convergence(rule, 10_000).expect("SoA runs");
        assert_eq!(
            expected, outcome,
            "mixed colony with custom agents diverged at {threads} round threads"
        );
        assert_eq!(
            oracle.role_census(),
            soa.role_census(),
            "census diverged at {threads} round threads"
        );
    }
}
