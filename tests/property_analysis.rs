//! Property-based tests on the analysis substrate: summary statistics,
//! quantiles, and least-squares fitting.

use house_hunting::analysis::{fit_linear, growth_assessment, Quantiles, Summary};
use proptest::prelude::*;

proptest! {
    /// Welford accumulation matches the naive two-pass formulas.
    #[test]
    fn summary_matches_two_pass(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let summary: Summary = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((summary.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!(
            (summary.population_variance() - var).abs() <= 1e-4 * (1.0 + var.abs())
        );
        prop_assert_eq!(summary.count(), values.len() as u64);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(summary.min(), min);
        prop_assert_eq!(summary.max(), max);
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn summary_merge_is_concatenation(
        left in proptest::collection::vec(-1e5f64..1e5, 0..100),
        right in proptest::collection::vec(-1e5f64..1e5, 0..100),
    ) {
        let mut merged: Summary = left.iter().copied().collect();
        let right_summary: Summary = right.iter().copied().collect();
        merged.merge(&right_summary);
        let whole: Summary = left.iter().chain(right.iter()).copied().collect();
        prop_assert_eq!(merged.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((merged.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!(
                (merged.sample_variance() - whole.sample_variance()).abs()
                    <= 1e-4 * (1.0 + whole.sample_variance().abs())
            );
        }
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let q = Quantiles::new(values.clone()).unwrap();
        let lo = q.quantile(0.0);
        let hi = q.quantile(1.0);
        let mut last = lo;
        for step in 0..=20 {
            let quantile = q.quantile(step as f64 / 20.0);
            prop_assert!(quantile >= last - 1e-9);
            prop_assert!(quantile >= lo && quantile <= hi);
            last = quantile;
        }
        prop_assert!(q.median() >= lo && q.median() <= hi);
    }

    /// Least squares exactly recovers noise-free lines.
    #[test]
    fn fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        count in 3usize..40,
    ) {
        let xs: Vec<f64> = (0..count).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
        prop_assert!(fit.r_squared > 0.999);
    }

    /// Adding symmetric residuals cannot flip a strong slope's sign.
    #[test]
    fn fit_is_stable_under_symmetric_noise(
        slope in 1.0f64..50.0,
        amplitude in 0.0f64..0.5,
    ) {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| slope * x + if i % 2 == 0 { amplitude } else { -amplitude })
            .collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        prop_assert!(fit.slope > 0.0);
    }

    /// Growth assessment of exact geometric series reports the ratio.
    #[test]
    fn growth_of_geometric_series(base in 1.0f64..100.0, ratio in 1.1f64..3.0) {
        let ys: Vec<f64> = (0..8).map(|i| base * ratio.powi(i)).collect();
        let growth = growth_assessment(&ys).unwrap();
        prop_assert!((growth.mean_ratio - ratio).abs() < 1e-6 * ratio);
    }
}
