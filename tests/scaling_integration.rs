//! Integration: coarse asymptotic sanity at CI-friendly sizes.
//!
//! The full sweeps live in the experiment harness (`hh-bench`); these
//! tests only pin the *direction* of each scaling claim so a regression
//! that flips an asymptotic shows up in `cargo test`.

use house_hunting::analysis::Summary;
use house_hunting::prelude::*;
use house_hunting::sim::{run_trials, solved_rounds};

fn mean_rounds(
    n: usize,
    spec: QualitySpec,
    rule: ConvergenceRule,
    trials: usize,
    seed_base: u64,
    colony_for: impl Fn(u64) -> Colony + Sync,
) -> f64 {
    let outcomes = run_trials(trials, 60_000, rule, |trial| {
        let seed = seed_base + trial as u64;
        ScenarioSpec::new(n, spec.clone())
            .seed(seed)
            .build_simulation(colony_for(seed))
    })
    .unwrap();
    let rounds: Summary = solved_rounds(&outcomes).into_iter().collect();
    assert!(
        rounds.count() as usize >= trials * 3 / 4,
        "too many failures"
    );
    rounds.mean()
}

#[test]
fn optimal_growth_is_sublinear_in_n() {
    let small = mean_rounds(
        64,
        QualitySpec::good_prefix(4, 2),
        ConvergenceRule::all_final(),
        10,
        1_000,
        |_| colony::optimal(64),
    );
    let large = mean_rounds(
        512,
        QualitySpec::good_prefix(4, 2),
        ConvergenceRule::all_final(),
        10,
        2_000,
        |_| colony::optimal(512),
    );
    // 8x the ants: rounds grow, but far less than 8x (log growth would
    // add ~ a constant per doubling).
    assert!(large < small * 3.0, "small {small}, large {large}");
}

#[test]
fn simple_growth_is_sublinear_in_n_at_fixed_k() {
    let small = mean_rounds(
        64,
        QualitySpec::all_good(2),
        ConvergenceRule::commitment(),
        10,
        3_000,
        |seed| colony::simple(64, seed),
    );
    let large = mean_rounds(
        512,
        QualitySpec::all_good(2),
        ConvergenceRule::commitment(),
        10,
        4_000,
        |seed| colony::simple(512, seed),
    );
    assert!(large < small * 3.0, "small {small}, large {large}");
}

#[test]
fn simple_pays_for_k_optimal_does_not() {
    // 40 trials per cell, not 10: the growth ratios being compared
    // differ by only ~0.3 at n=256, and at 10 trials the comparison
    // flips on the seed stream (~0.05s per cell, so still cheap).
    let n = 256;
    let simple_k2 = mean_rounds(
        n,
        QualitySpec::all_good(2),
        ConvergenceRule::commitment(),
        40,
        5_000,
        |seed| colony::simple(n, seed),
    );
    let simple_k16 = mean_rounds(
        n,
        QualitySpec::all_good(16),
        ConvergenceRule::commitment(),
        40,
        6_000,
        |seed| colony::simple(n, seed),
    );
    let optimal_k2 = mean_rounds(
        n,
        QualitySpec::all_good(2),
        ConvergenceRule::all_final(),
        40,
        7_000,
        |_| colony::optimal(n),
    );
    let optimal_k16 = mean_rounds(
        n,
        QualitySpec::all_good(16),
        ConvergenceRule::all_final(),
        40,
        8_000,
        |_| colony::optimal(n),
    );
    let simple_growth = simple_k16 / simple_k2;
    let optimal_growth = optimal_k16 / optimal_k2;
    assert!(
        simple_growth > optimal_growth,
        "simple x{simple_growth:.2} should outgrow optimal x{optimal_growth:.2} in k"
    );
}

#[test]
fn spreading_tracks_the_lower_bound_scale() {
    // Rounds to inform everyone at n vs 8n: must grow by roughly the
    // log-difference (≈ +3 doublings' worth), not by 8x.
    let small = mean_rounds(
        64,
        QualitySpec::single_good(2, 1),
        ConvergenceRule::commitment(),
        10,
        9_000,
        |seed| colony::spreaders(64, seed, SpreadStrategy::WaitAtHome),
    );
    let large = mean_rounds(
        512,
        QualitySpec::single_good(2, 1),
        ConvergenceRule::commitment(),
        10,
        10_000,
        |seed| colony::spreaders(512, seed, SpreadStrategy::WaitAtHome),
    );
    assert!(large > small, "more ants take longer to inform");
    assert!(large < small * 4.0, "informing grows logarithmically");
}

#[test]
fn adaptive_is_flatter_than_simple_in_k() {
    let n = 256;
    let simple_k2 = mean_rounds(
        n,
        QualitySpec::all_good(2),
        ConvergenceRule::commitment(),
        8,
        11_000,
        |seed| colony::simple(n, seed),
    );
    let simple_k16 = mean_rounds(
        n,
        QualitySpec::all_good(16),
        ConvergenceRule::commitment(),
        8,
        12_000,
        |seed| colony::simple(n, seed),
    );
    let adaptive_k2 = mean_rounds(
        n,
        QualitySpec::all_good(2),
        ConvergenceRule::commitment(),
        8,
        13_000,
        |seed| colony::adaptive(n, seed),
    );
    let adaptive_k16 = mean_rounds(
        n,
        QualitySpec::all_good(16),
        ConvergenceRule::commitment(),
        8,
        14_000,
        |seed| colony::adaptive(n, seed),
    );
    assert!(
        adaptive_k16 / adaptive_k2 < simple_k16 / simple_k2,
        "adaptive growth {:.2} should be below simple growth {:.2}",
        adaptive_k16 / adaptive_k2,
        simple_k16 / simple_k2
    );
}
