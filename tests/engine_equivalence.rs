//! Engine dispatch equivalence: a colony built from statically
//! dispatched [`AnyAgent`] variants must produce **bit-identical**
//! [`TrialOutcome`]s to the very same colony boxed behind the
//! [`AnyAgent::Custom`] escape hatch.
//!
//! This is the guard rail for the static-dispatch migration: every
//! behavioural difference between the enum fast path and the `dyn Agent`
//! fallback — a missed trait-method forward, a divergent default, an
//! executor fast-path asymmetry — shows up here as a differing outcome.
//! (`AnyAgent` itself implements `Agent`, so re-boxing the built
//! variants exercises the exact agents on both dispatch routes.)

use house_hunting::prelude::*;
use house_hunting::sim::run_trials_with_workers;
use proptest::prelude::*;

/// Runs `trials` trials of `scenario` with the colony passed through
/// `wrap`, under the scenario's own rule and budget.
fn run_wrapped(
    scenario: &Scenario,
    trials: usize,
    workers: usize,
    wrap: fn(AnyAgent) -> AnyAgent,
) -> Vec<TrialOutcome> {
    run_trials_with_workers(
        trials,
        scenario.round_budget(),
        scenario.convergence_rule(),
        workers,
        |trial| {
            let seed = scenario.trial_seed(trial);
            let colony: Colony = scenario.colony_for(seed).into_iter().map(wrap).collect();
            scenario.spec_for(seed).build_simulation(colony)
        },
    )
    .expect("valid scenario")
}

/// Catalog entries covering every dispatch-relevant axis: plain uniform
/// colonies, planted idlers, Byzantine adversaries, the boxed quality
/// variant, heterogeneous mixes, and a perturbed (slow-path) execution.
fn dispatch_scenarios() -> Vec<Scenario> {
    [
        "baseline-16",
        "idle-quarter-128",
        "byzantine-handful-96",
        "quality-tie-128",
        "hetero-simple-adaptive-256",
        "mixed-faults-128",
    ]
    .into_iter()
    .map(|name| registry::lookup(name).expect("catalog entry"))
    .collect()
}

#[test]
fn static_and_custom_dispatch_are_bit_identical() {
    for scenario in dispatch_scenarios() {
        let stat = run_wrapped(&scenario, 2, 1, |agent| agent);
        let boxed = run_wrapped(&scenario, 2, 1, AnyAgent::custom);
        assert_eq!(
            stat,
            boxed,
            "{}: Custom-boxed colony diverged from static dispatch",
            scenario.name()
        );
    }
}

#[test]
fn dispatch_equivalence_holds_under_round_threads() {
    // The chunked parallel engine must preserve the dispatch-equivalence
    // guarantee: a Custom-boxed colony on 8 intra-round threads matches
    // the static-dispatch colony on the serial engine bit for bit.
    for scenario in dispatch_scenarios() {
        let serial_static = run_wrapped(&scenario, 2, 1, |agent| agent);
        let threaded = scenario.clone().round_threads(8);
        let threaded_boxed = run_wrapped(&threaded, 2, 1, AnyAgent::custom);
        assert_eq!(
            serial_static,
            threaded_boxed,
            "{}: boxed colony on 8 round threads diverged from serial static dispatch",
            scenario.name()
        );
    }
}

#[test]
fn custom_wrapping_is_visible_but_behaviour_is_not() {
    let scenario = registry::lookup("baseline-16").expect("catalog entry");
    let seed = scenario.base_seed();
    let stat = scenario.colony_for(seed);
    assert!(stat.iter().all(|a| !a.is_custom()));
    let boxed: Colony = scenario
        .colony_for(seed)
        .into_iter()
        .map(AnyAgent::custom)
        .collect();
    assert!(boxed.iter().all(AnyAgent::is_custom));
    // The harness-observable surface is unchanged.
    assert_eq!(stat.census(), boxed.census());
    for (a, b) in stat.iter().zip(boxed.iter()) {
        assert_eq!(a.label(), b.label());
        assert_eq!(a.is_honest(), b.is_honest());
    }
}

proptest! {
    // Each case runs 2 × trials bounded executions on small/medium
    // colonies; keep the case count CI-sized.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The equivalence holds across arbitrary seeds, trial counts, and
    /// worker counts, for every dispatch-relevant catalog family.
    #[test]
    fn dispatch_equivalence_across_seeds(
        scenario_pick in 0usize..6,
        base_seed in any::<u64>(),
        trials in 1usize..3,
        workers in 1usize..5,
    ) {
        let scenario = dispatch_scenarios()[scenario_pick]
            .clone()
            .base_seed_value(base_seed)
            // Cap the budget so non-converging seeds stay cheap; both
            // dispatch routes share the cap, so equivalence is unaffected.
            .max_rounds(2_000);
        let stat = run_wrapped(&scenario, trials, workers, |agent| agent);
        let boxed = run_wrapped(&scenario, trials, 1, AnyAgent::custom);
        prop_assert_eq!(stat, boxed, "{}: dispatch divergence", scenario.name());
    }
}
