//! Integration: the Section 6 extension agents through the full stack —
//! adaptive rate, non-binary quality (with downgrade rejection), the
//! lower-bound spreaders, and mixed adversarial colonies.

use house_hunting::core::{OscillatorAnt, QualityAnt, SleeperAnt};
use house_hunting::model::Quality;
use house_hunting::prelude::*;
use house_hunting::sim::{run_trials, success_rate, SeriesRecorder};

#[test]
fn adaptive_colony_converges_on_mixed_habitats() {
    for seed in 0..4 {
        let solved = ScenarioSpec::new(96, QualitySpec::good_prefix(6, 3))
            .seed(seed)
            .build_simulation(colony::adaptive(96, seed))
            .unwrap()
            .run_to_convergence(ConvergenceRule::commitment(), 30_000)
            .unwrap()
            .solved
            .unwrap_or_else(|| panic!("seed {seed}: adaptive stuck"));
        assert!(solved.good);
    }
}

#[test]
fn quality_colony_picks_the_best_of_three_graded_nests() {
    let spec = QualitySpec::Explicit(vec![
        Quality::new(0.95).unwrap(),
        Quality::new(0.55).unwrap(),
        Quality::new(0.15).unwrap(),
    ]);
    let mut best_wins = 0;
    let trials = 10;
    for seed in 0..trials {
        let solved = ScenarioSpec::new(96, spec.clone())
            .seed(seed)
            .reveal_quality_on_go()
            .build_simulation(colony::quality(96, seed, 3.0))
            .unwrap()
            .run_to_convergence(ConvergenceRule::commitment_any(), 30_000)
            .unwrap()
            .solved;
        if solved.map(|s| s.nest) == Some(NestId::candidate(1)) {
            best_wins += 1;
        }
    }
    assert!(best_wins >= 7, "best nest won only {best_wins}/{trials}");
}

#[test]
fn downgrade_rejection_does_not_break_convergence() {
    let spec = QualitySpec::Explicit(vec![Quality::new(0.9).unwrap(), Quality::new(0.4).unwrap()]);
    let agents = colony::from_factory(64, 9, |_, seed| {
        QualityAnt::new(64, seed, 2.0).with_rejection(0.2)
    });
    let solved = ScenarioSpec::new(64, spec)
        .seed(9)
        .reveal_quality_on_go()
        .build_simulation(agents)
        .unwrap()
        .run_to_convergence(ConvergenceRule::commitment_any(), 30_000)
        .unwrap()
        .solved
        .expect("rejecting colony still converges");
    assert_eq!(solved.nest, NestId::candidate(1), "and on the better nest");
}

#[test]
fn spreader_strategies_all_inform_with_wait_fastest_at_scale() {
    let n = 512;
    let mut results = Vec::new();
    for strategy in [
        SpreadStrategy::WaitAtHome,
        SpreadStrategy::SearchForever,
        SpreadStrategy::Hybrid {
            search_probability: 0.3,
        },
    ] {
        let outcomes = run_trials(6, 20_000, ConvergenceRule::commitment(), |trial| {
            let seed = 40 + trial as u64;
            ScenarioSpec::new(n, QualitySpec::single_good(4, 2))
                .seed(seed)
                .build_simulation(colony::spreaders(n, seed, strategy))
        })
        .unwrap();
        assert_eq!(success_rate(&outcomes), 1.0, "{}", strategy.label());
        let mean: f64 = outcomes
            .iter()
            .filter_map(|o| o.solved.map(|s| s.round as f64))
            .sum::<f64>()
            / outcomes.len() as f64;
        results.push((strategy.label(), mean));
    }
    // With k = 4, pure searching informs at rate 1/4 per round; the
    // recruitment-driven wait strategy spreads exponentially and should
    // be substantially faster at this scale.
    let wait = results[0].1;
    let search = results[1].1;
    assert!(
        wait < search,
        "wait {wait} should beat pure search {search} at n = {n}, k = 4"
    );
}

#[test]
fn oscillators_and_sleepers_only_delay_the_honest_colony() {
    let n = 72;
    let outcomes = run_trials(8, 30_000, ConvergenceRule::quorum(0.9, 8), |trial| {
        let seed = 60 + trial as u64;
        let mut agents = colony::simple(n, seed);
        colony::plant_adversaries(&mut agents, 4, |slot| {
            if slot % 2 == 0 {
                Box::new(OscillatorAnt::new()) as BoxedAgent
            } else {
                Box::new(SleeperAnt::new(n, seed + slot as u64, 30)) as BoxedAgent
            }
        });
        ScenarioSpec::new(n, QualitySpec::good_prefix(4, 2))
            .seed(seed)
            .build_simulation(agents)
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.75,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn series_recorder_tracks_extension_colonies() {
    let mut sim = ScenarioSpec::new(48, QualitySpec::all_good(3))
        .seed(3)
        .build_simulation(colony::adaptive(48, 3))
        .unwrap();
    let mut recorder = SeriesRecorder::new();
    let outcome = sim
        .run_observed(ConvergenceRule::commitment(), 20_000, |sim, _| {
            recorder.record(sim)
        })
        .unwrap();
    assert!(outcome.solved.is_some());
    let competing = recorder.competing_series();
    assert_eq!(*competing.last().unwrap(), 1, "ends with a single nest");
    assert!(competing.iter().max().unwrap() <= &3);
}
