//! Integration: the Section 6 perturbation matrix at small scale —
//! noise, crashes, delays, Byzantine agents, and combinations.

use house_hunting::core::BadNestRecruiter;
use house_hunting::model::faults::{CrashPlan, CrashStyle, DelayPlan};
use house_hunting::model::noise::{CountNoise, QualityNoise};
use house_hunting::prelude::*;
use house_hunting::sim::{run_trials, success_rate};

const N: usize = 64;

fn spec() -> QualitySpec {
    QualitySpec::good_prefix(4, 2)
}

#[test]
fn simple_survives_mild_count_noise() {
    let outcomes = run_trials(8, 20_000, ConvergenceRule::stable_commitment(8), |trial| {
        let seed = 100 + trial as u64;
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .noise(NoiseModel {
                count: CountNoise::multiplicative(0.25).unwrap(),
                quality: Default::default(),
            })
            .build_simulation(colony::simple(N, seed))
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.75,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn simple_survives_quality_misreads() {
    // 5% misclassification at search time: occasionally an ant campaigns
    // for a bad nest, but the good-nest majority still wins.
    let outcomes = run_trials(8, 20_000, ConvergenceRule::stable_commitment(8), |trial| {
        let seed = 200 + trial as u64;
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .noise(NoiseModel {
                count: CountNoise::Exact,
                quality: QualityNoise::flip(0.05).unwrap(),
            })
            .build_simulation(colony::simple(N, seed))
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.6,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn simple_survives_crashes_at_both_styles() {
    for style in [CrashStyle::InPlace, CrashStyle::AtHome] {
        let outcomes = run_trials(8, 20_000, ConvergenceRule::stable_commitment(8), |trial| {
            let seed = 300 + trial as u64;
            ScenarioSpec::new(N, spec())
                .seed(seed)
                .perturbations(Perturbations {
                    crash: CrashPlan::fraction(N, 0.15, 8, style, seed),
                    delay: DelayPlan::never(),
                })
                .build_simulation(colony::simple(N, seed))
        })
        .unwrap();
        assert!(
            success_rate(&outcomes) >= 0.75,
            "{style:?}: rate {}",
            success_rate(&outcomes)
        );
    }
}

#[test]
fn simple_survives_delays() {
    let outcomes = run_trials(8, 30_000, ConvergenceRule::stable_commitment(8), |trial| {
        let seed = 400 + trial as u64;
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .perturbations(Perturbations {
                crash: CrashPlan::none(N),
                delay: DelayPlan::new(0.15, seed),
            })
            .build_simulation(colony::simple(N, seed))
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.75,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn optimal_is_fragile_under_delays() {
    // The paper's claim in the negative: the optimal algorithm needs
    // lockstep synchrony. Under 15% delays it should fail noticeably
    // more often than the simple one.
    let measure = |agents_for: fn(u64) -> Colony| {
        let outcomes = run_trials(8, 30_000, ConvergenceRule::stable_commitment(8), |trial| {
            let seed = 500 + trial as u64;
            ScenarioSpec::new(N, spec())
                .seed(seed)
                .perturbations(Perturbations {
                    crash: CrashPlan::none(N),
                    delay: DelayPlan::new(0.15, seed),
                })
                .build_simulation(agents_for(seed))
        })
        .unwrap();
        success_rate(&outcomes)
    };
    let optimal_rate = measure(|_| colony::optimal(N));
    let simple_rate = measure(|seed| colony::simple(N, seed));
    assert!(
        simple_rate >= optimal_rate,
        "simple {simple_rate} should be at least as robust as optimal {optimal_rate}"
    );
    assert!(
        optimal_rate <= 0.8,
        "optimal unexpectedly robust: {optimal_rate}"
    );
}

#[test]
fn byzantine_minority_does_not_stop_honest_quorum() {
    let outcomes = run_trials(8, 20_000, ConvergenceRule::quorum(0.9, 8), |trial| {
        let seed = 600 + trial as u64;
        let mut agents = colony::simple(N, seed);
        colony::plant_adversaries(&mut agents, 3, |_| BadNestRecruiter::new());
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .build_simulation(agents)
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.75,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn zero_probability_schedules_are_noops() {
    // A "perturbed" simulation whose crash fraction and delay probability
    // are both zero must be bit-identical to the unperturbed baseline —
    // same convergence, same rounds, and zero replaced actions.
    let seed = 4_321;
    let perturbations = Perturbations {
        crash: CrashPlan::fraction(N, 0.0, 5, CrashStyle::InPlace, seed),
        delay: DelayPlan::new(0.0, seed),
    };
    assert!(perturbations.is_none(), "zero-probability plans are empty");

    let run = |perturbed: bool| {
        let mut spec = ScenarioSpec::new(N, spec()).seed(seed);
        if perturbed {
            spec = spec.perturbations(perturbations.clone());
        }
        let mut sim = spec.build_simulation(colony::simple(N, seed)).unwrap();
        sim.run_to_convergence(ConvergenceRule::commitment(), 20_000)
            .unwrap()
    };
    let baseline = run(false);
    let zeroed = run(true);
    assert_eq!(baseline, zeroed);
    assert_eq!(zeroed.replaced_actions, 0);
    assert!(zeroed.solved.is_some());
}

#[test]
fn all_crash_schedule_never_converges_but_counts_noops() {
    // Everyone crashes at round 1: the colony is frozen from the first
    // step, nothing can converge, and every action of every round is a
    // replaced no-op.
    let rounds = 50;
    let outcomes = run_trials(2, rounds, ConvergenceRule::commitment(), |trial| {
        let seed = 800 + trial as u64;
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .perturbations(Perturbations {
                crash: CrashPlan::fraction(N, 1.0, 1, CrashStyle::InPlace, seed),
                delay: DelayPlan::never(),
            })
            .build_simulation(colony::simple(N, seed))
    })
    .unwrap();
    for outcome in &outcomes {
        assert!(outcome.solved.is_none(), "a fully crashed colony solved");
        assert_eq!(outcome.rounds_run, rounds);
        assert_eq!(
            outcome.replaced_actions,
            N as u64 * rounds,
            "every (ant, round) action must be a counted no-op"
        );
        assert_eq!(outcome.illegal_actions, 0);
    }
}

#[test]
fn late_all_crash_counts_noops_from_the_crash_round() {
    // Crashing everyone at round 10 replaces actions only from round 10
    // on: rounds 1..=9 run the real algorithm.
    let seed = 901;
    let crash_round = 10;
    let rounds = 40;
    let mut sim = ScenarioSpec::new(N, spec())
        .seed(seed)
        .perturbations(Perturbations {
            crash: CrashPlan::fraction(N, 1.0, crash_round, CrashStyle::InPlace, seed),
            delay: DelayPlan::never(),
        })
        .build_simulation(colony::simple(N, seed))
        .unwrap();
    let outcome = sim
        .run_to_convergence(ConvergenceRule::commitment(), rounds)
        .unwrap();
    assert!(outcome.solved.is_none(), "no consensus in 9 live rounds");
    assert_eq!(
        outcome.replaced_actions,
        N as u64 * (rounds - crash_round + 1)
    );
}

#[test]
fn combined_perturbations_small_doses() {
    // Everything at once, mildly: noise + a couple of crashes + rare
    // delays + one adversary.
    let outcomes = run_trials(8, 30_000, ConvergenceRule::quorum(0.9, 8), |trial| {
        let seed = 700 + trial as u64;
        let mut agents = colony::simple(N, seed);
        colony::plant_adversaries(&mut agents, 1, |_| BadNestRecruiter::new());
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .noise(NoiseModel {
                count: CountNoise::uniform_relative(0.2).unwrap(),
                quality: Default::default(),
            })
            .perturbations(Perturbations {
                crash: CrashPlan::fraction(N, 0.05, 12, CrashStyle::InPlace, seed),
                delay: DelayPlan::new(0.05, seed),
            })
            .build_simulation(agents)
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.6,
        "rate {}",
        success_rate(&outcomes)
    );
}
