//! Integration: the Section 6 perturbation matrix at small scale —
//! noise, crashes, delays, Byzantine agents, and combinations.

use house_hunting::core::BadNestRecruiter;
use house_hunting::model::faults::{CrashPlan, CrashStyle, DelayPlan};
use house_hunting::model::noise::{CountNoise, QualityNoise};
use house_hunting::prelude::*;
use house_hunting::sim::{run_trials, success_rate};

const N: usize = 64;

fn spec() -> QualitySpec {
    QualitySpec::good_prefix(4, 2)
}

#[test]
fn simple_survives_mild_count_noise() {
    let outcomes = run_trials(8, 20_000, ConvergenceRule::stable_commitment(8), |trial| {
        let seed = 100 + trial as u64;
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .noise(NoiseModel {
                count: CountNoise::multiplicative(0.25).unwrap(),
                quality: Default::default(),
            })
            .build_simulation(colony::simple(N, seed))
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.75,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn simple_survives_quality_misreads() {
    // 5% misclassification at search time: occasionally an ant campaigns
    // for a bad nest, but the good-nest majority still wins.
    let outcomes = run_trials(8, 20_000, ConvergenceRule::stable_commitment(8), |trial| {
        let seed = 200 + trial as u64;
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .noise(NoiseModel {
                count: CountNoise::Exact,
                quality: QualityNoise::flip(0.05).unwrap(),
            })
            .build_simulation(colony::simple(N, seed))
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.6,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn simple_survives_crashes_at_both_styles() {
    for style in [CrashStyle::InPlace, CrashStyle::AtHome] {
        let outcomes = run_trials(8, 20_000, ConvergenceRule::stable_commitment(8), |trial| {
            let seed = 300 + trial as u64;
            ScenarioSpec::new(N, spec())
                .seed(seed)
                .perturbations(Perturbations {
                    crash: CrashPlan::fraction(N, 0.15, 8, style, seed),
                    delay: DelayPlan::never(),
                })
                .build_simulation(colony::simple(N, seed))
        })
        .unwrap();
        assert!(
            success_rate(&outcomes) >= 0.75,
            "{style:?}: rate {}",
            success_rate(&outcomes)
        );
    }
}

#[test]
fn simple_survives_delays() {
    let outcomes = run_trials(8, 30_000, ConvergenceRule::stable_commitment(8), |trial| {
        let seed = 400 + trial as u64;
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .perturbations(Perturbations {
                crash: CrashPlan::none(N),
                delay: DelayPlan::new(0.15, seed),
            })
            .build_simulation(colony::simple(N, seed))
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.75,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn optimal_is_fragile_under_delays() {
    // The paper's claim in the negative: the optimal algorithm needs
    // lockstep synchrony. Under 15% delays it should fail noticeably
    // more often than the simple one.
    let measure = |agents_for: fn(u64) -> Vec<BoxedAgent>| {
        let outcomes = run_trials(8, 30_000, ConvergenceRule::stable_commitment(8), |trial| {
            let seed = 500 + trial as u64;
            ScenarioSpec::new(N, spec())
                .seed(seed)
                .perturbations(Perturbations {
                    crash: CrashPlan::none(N),
                    delay: DelayPlan::new(0.15, seed),
                })
                .build_simulation(agents_for(seed))
        })
        .unwrap();
        success_rate(&outcomes)
    };
    let optimal_rate = measure(|_| colony::optimal(N));
    let simple_rate = measure(|seed| colony::simple(N, seed));
    assert!(
        simple_rate >= optimal_rate,
        "simple {simple_rate} should be at least as robust as optimal {optimal_rate}"
    );
    assert!(
        optimal_rate <= 0.8,
        "optimal unexpectedly robust: {optimal_rate}"
    );
}

#[test]
fn byzantine_minority_does_not_stop_honest_quorum() {
    let outcomes = run_trials(8, 20_000, ConvergenceRule::quorum(0.9, 8), |trial| {
        let seed = 600 + trial as u64;
        let mut agents = colony::simple(N, seed);
        colony::plant_adversaries(&mut agents, 3, |_| Box::new(BadNestRecruiter::new()));
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .build_simulation(agents)
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.75,
        "rate {}",
        success_rate(&outcomes)
    );
}

#[test]
fn combined_perturbations_small_doses() {
    // Everything at once, mildly: noise + a couple of crashes + rare
    // delays + one adversary.
    let outcomes = run_trials(8, 30_000, ConvergenceRule::quorum(0.9, 8), |trial| {
        let seed = 700 + trial as u64;
        let mut agents = colony::simple(N, seed);
        colony::plant_adversaries(&mut agents, 1, |_| Box::new(BadNestRecruiter::new()));
        ScenarioSpec::new(N, spec())
            .seed(seed)
            .noise(NoiseModel {
                count: CountNoise::uniform_relative(0.2).unwrap(),
                quality: Default::default(),
            })
            .perturbations(Perturbations {
                crash: CrashPlan::fraction(N, 0.05, 12, CrashStyle::InPlace, seed),
                delay: DelayPlan::new(0.05, seed),
            })
            .build_simulation(agents)
    })
    .unwrap();
    assert!(
        success_rate(&outcomes) >= 0.6,
        "rate {}",
        success_rate(&outcomes)
    );
}
