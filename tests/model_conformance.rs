//! Integration: the environment enforces the Section 2 semantics
//! end-to-end through the public facade.

use house_hunting::prelude::*;

fn build_env(n: usize, k: usize, seed: u64) -> Environment {
    Environment::new(&ColonyConfig::new(n, QualitySpec::all_good(k)).seed(seed)).expect("valid")
}

#[test]
fn counts_are_conserved_across_a_long_mixed_run() {
    let n = 64;
    let k = 5;
    let mut env = build_env(n, k, 1);
    env.step(&vec![Action::Search; n]).unwrap();
    for round in 0..200u64 {
        let actions: Vec<Action> = (0..n)
            .map(|i| {
                let ant = AntId::new(i);
                let here = env.location_of(ant);
                let known = env.first_known(ant).expect("searched in round 1");
                match (i as u64 + round) % 4 {
                    0 => Action::Search,
                    1 if !here.is_home() => Action::Go(here),
                    2 => Action::recruit_active(known),
                    _ => Action::recruit_passive(known),
                }
            })
            .collect();
        env.step(&actions).unwrap();
        assert_eq!(env.counts().iter().sum::<usize>(), n, "ants conserved");
        let home = env.count(NestId::HOME);
        let away: usize = (1..=k).map(|i| env.count(NestId::candidate(i))).sum();
        assert_eq!(home + away, n);
    }
}

#[test]
fn locations_follow_actions_exactly() {
    let n = 8;
    let mut env = build_env(n, 3, 2);
    let report = env.step(&vec![Action::Search; n]).unwrap();
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let Outcome::Search { nest, .. } = outcome else {
            panic!("round 1 must answer searches")
        };
        assert_eq!(env.location_of(AntId::new(i)), *nest);
    }
    // Everyone recruits: all at home afterwards.
    let actions: Vec<Action> = (0..n)
        .map(|i| Action::recruit_passive(env.location_of(AntId::new(i))))
        .collect();
    env.step(&actions).unwrap();
    assert_eq!(env.count(NestId::HOME), n);
}

#[test]
fn recruitment_report_matches_outcomes() {
    let n = 32;
    let mut env = build_env(n, 2, 3);
    env.step(&vec![Action::Search; n]).unwrap();
    let actions: Vec<Action> = (0..n)
        .map(|i| {
            let nest = env.location_of(AntId::new(i));
            if i % 2 == 0 {
                Action::recruit_active(nest)
            } else {
                Action::recruit_passive(nest)
            }
        })
        .collect();
    let report = env.step(&actions).unwrap();
    assert_eq!(report.recruitment.calls.len(), n);
    // Every recruited ant's outcome nest must equal its recruiter's input
    // nest.
    for &(recruiter, recruited) in &report.recruitment.pairs {
        let recruiter_input = actions[recruiter.index()].nest().unwrap();
        match report.outcomes[recruited.index()] {
            Outcome::Recruit { nest, .. } => assert_eq!(nest, recruiter_input),
            ref other => panic!("recruited ant has outcome {other:?}"),
        }
    }
    // No ant appears twice on the recruited side.
    let mut seen = std::collections::BTreeSet::new();
    for &(_, recruited) in &report.recruitment.pairs {
        assert!(seen.insert(recruited), "{recruited} recruited twice");
    }
}

#[test]
fn knowledge_gates_go_and_recruit() {
    let mut env = build_env(2, 3, 4);
    // Find what ant 0 knows after searching.
    let report = env.step(&[Action::Search, Action::Search]).unwrap();
    let known0 = report.outcomes[0].nest().unwrap();
    // Any nest that is neither ant 0's search result nor learned by
    // recruitment is out of bounds.
    let unknown = (1..=3)
        .map(NestId::candidate)
        .find(|&nest| nest != known0)
        .unwrap();
    let err = env
        .step(&[Action::Go(unknown), Action::Search])
        .unwrap_err();
    assert!(matches!(err, ModelError::NestNotKnown { .. }));
    // The environment state is untouched by the failed step.
    assert_eq!(env.round(), 1);
    // The known nest works.
    env.step(&[Action::Go(known0), Action::Search]).unwrap();
    assert_eq!(env.round(), 2);
}

#[test]
fn environment_executions_are_reproducible() {
    let run = |seed: u64| {
        let n = 24;
        let mut env = build_env(n, 3, seed);
        let mut populations = Vec::new();
        env.step(&vec![Action::Search; n]).unwrap();
        for _ in 0..50 {
            let actions: Vec<Action> = (0..n)
                .map(|i| {
                    let ant = AntId::new(i);
                    let target = if env.location_of(ant).is_home() {
                        env.first_known(ant).unwrap()
                    } else {
                        env.location_of(ant)
                    };
                    Action::recruit_active(target)
                })
                .collect();
            env.step(&actions).unwrap();
            let back: Vec<Action> = (0..n)
                .map(|i| Action::Go(env.first_known(AntId::new(i)).unwrap()))
                .collect();
            env.step(&back).unwrap();
            populations.push(env.counts().to_vec());
        }
        populations
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

#[test]
fn noise_affects_observations_not_state() {
    use house_hunting::model::noise::{CountNoise, NoiseModel};
    let n = 500;
    let config = ColonyConfig::new(n, QualitySpec::all_good(1))
        .seed(9)
        .noise(NoiseModel {
            count: CountNoise::subsample(0.2).unwrap(),
            quality: Default::default(),
        });
    let mut env = Environment::new(&config).unwrap();
    let report = env.step(&vec![Action::Search; n]).unwrap();
    // True state is exact.
    assert_eq!(env.count(NestId::candidate(1)), n);
    // Observations vary around the truth.
    let counts: Vec<u32> = report.outcomes.iter().map(|o| o.count()).collect();
    let distinct: std::collections::BTreeSet<u32> = counts.iter().copied().collect();
    assert!(distinct.len() > 1, "independent noise draws should differ");
    let mean = counts.iter().map(|&c| c as u64).sum::<u64>() as f64 / n as f64;
    assert!(
        (mean - n as f64).abs() / (n as f64) < 0.1,
        "unbiased around truth"
    );
}
