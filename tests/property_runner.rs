//! Property-based tests on the parallel trial runner: the determinism
//! contract stated in `runner.rs` — outcomes depend only on the factory,
//! never on scheduling — exercised over random colony sizes, habitats,
//! seeds, and worker counts.

use house_hunting::prelude::*;
use house_hunting::sim::{run_trials, run_trials_with_workers};
use proptest::prelude::*;

fn build(
    n: usize,
    k: usize,
    good: usize,
    seed_base: u64,
    trial: usize,
) -> Result<Simulation, SimError> {
    let seed = seed_base.wrapping_add(trial as u64);
    ScenarioSpec::new(n, QualitySpec::good_prefix(k, good))
        .seed(seed)
        .build_simulation(colony::simple(n, seed))
}

proptest! {
    // Each case runs up to 6 × (1 + 3) bounded simulations; keep the
    // case count CI-sized.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `run_trials` returns identical `TrialOutcome` vectors when the
    /// worker count is forced to 1 vs. many, for arbitrary workloads.
    #[test]
    fn worker_count_never_changes_outcomes(
        n in 8usize..48,
        k in 2usize..5,
        trials in 1usize..6,
        seed_base in any::<u64>(),
        workers in 2usize..16,
    ) {
        let good = 1 + k / 2;
        let rule = ConvergenceRule::commitment();
        let serial = run_trials_with_workers(trials, 2_000, rule, 1, |t| {
            build(n, k, good, seed_base, t)
        }).unwrap();
        let parallel = run_trials_with_workers(trials, 2_000, rule, workers, |t| {
            build(n, k, good, seed_base, t)
        }).unwrap();
        let auto = run_trials(trials, 2_000, rule, |t| {
            build(n, k, good, seed_base, t)
        }).unwrap();

        prop_assert_eq!(serial.len(), trials);
        prop_assert_eq!(&serial, &parallel, "1 vs {} workers diverged", workers);
        prop_assert_eq!(&serial, &auto, "auto worker pool diverged from serial");
        for (i, outcome) in serial.iter().enumerate() {
            prop_assert_eq!(outcome.trial, i, "trial order must be stable");
        }
    }

    /// Registry scenarios inherit the same contract through their
    /// `run_trials_with_workers` wrapper.
    #[test]
    fn registry_trials_are_scheduling_independent(
        trials in 1usize..4,
        workers in 2usize..12,
    ) {
        let scenario = registry::lookup("baseline-16").expect("registered");
        let serial = scenario.run_trials_with_workers(trials, 1).unwrap();
        let parallel = scenario.run_trials_with_workers(trials, workers).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// Intra-round chunk boundaries never leak into results: because
    /// every per-ant draw comes from that ant's own RNG stream, the
    /// per-round state is a function of per-ant state only. Two distinct
    /// thread counts give two distinct boundary layouts over the same
    /// colony; both must match the serial engine round for round.
    #[test]
    fn chunk_boundaries_never_change_round_results(
        n in 2usize..96,
        k in 2usize..5,
        seed in any::<u64>(),
        threads_a in 2usize..17,
        threads_b in 2usize..17,
        rounds in 1usize..40,
    ) {
        let build = |threads: usize| -> Result<Simulation, SimError> {
            Ok(ScenarioSpec::new(n, QualitySpec::good_prefix(k, 1 + k / 2))
                .seed(seed)
                .build_simulation(colony::simple(n, seed))?
                .with_round_threads(threads))
        };
        let mut serial = build(1).unwrap();
        let mut chunked_a = build(threads_a).unwrap();
        let mut chunked_b = build(threads_b).unwrap();
        for round in 0..rounds {
            let reference = serial.step().unwrap();
            let report_a = chunked_a.step().unwrap();
            let report_b = chunked_b.step().unwrap();
            prop_assert_eq!(
                &reference, &report_a,
                "round {}: {} threads diverged from serial", round, threads_a
            );
            prop_assert_eq!(
                &reference, &report_b,
                "round {}: {} threads diverged from serial", round, threads_b
            );
        }
        prop_assert_eq!(serial.env().counts(), chunked_a.env().counts());
        prop_assert_eq!(serial.env().locations(), chunked_a.env().locations());
    }

    /// The SoA `engine_split` survives *adversarial* chunk shapes, not
    /// just the even division `with_round_threads` produces: width-1
    /// bands, an `n − 1` cut, prime strides, and arbitrary random
    /// boundary vectors (including empty chunks) must all merge their
    /// column bands and census deltas to exactly the serial execution's
    /// state, round for round.
    #[test]
    fn adversarial_chunk_bounds_never_change_round_results(
        n in 4usize..96,
        k in 2usize..5,
        seed in any::<u64>(),
        rounds in 1usize..24,
        cuts in proptest::collection::vec(any::<usize>(), 0..15),
    ) {
        let build = || -> Result<Simulation, SimError> {
            ScenarioSpec::new(n, QualitySpec::good_prefix(k, 1 + k / 2))
                .seed(seed)
                .build_simulation(colony::simple(n, seed))
        };

        // Adversarial fixed shapes plus one randomized boundary vector.
        let mut prime = vec![0];
        let mut at = 0;
        while at + 7 < n && prime.len() < 15 {
            at += 7;
            prime.push(at);
        }
        prime.push(n);
        let mut random = vec![0];
        random.extend(cuts.iter().map(|cut| cut % (n + 1)));
        random.push(n);
        random.sort_unstable();
        let bounds_sets: Vec<Vec<usize>> = vec![
            vec![0, 1, n],          // width-1 head chunk
            vec![0, n - 1, n],      // n−1 cut (width-1 tail chunk)
            prime,                  // prime stride
            random,                 // arbitrary, possibly empty chunks
        ];

        let mut serial = build().unwrap();
        let mut chunked: Vec<(Vec<usize>, Simulation)> = bounds_sets
            .into_iter()
            .map(|bounds| (bounds.clone(), build().unwrap().with_chunk_bounds(bounds)))
            .collect();
        for round in 0..rounds {
            let reference = serial.step().unwrap();
            for (bounds, sim) in &mut chunked {
                let report = sim.step().unwrap();
                prop_assert_eq!(
                    &reference, &report,
                    "round {}: chunk bounds {:?} diverged from serial", round, bounds
                );
            }
        }
        for (bounds, sim) in &mut chunked {
            prop_assert_eq!(
                serial.env().counts(), sim.env().counts(),
                "chunk bounds {:?}: final populations diverged", bounds
            );
            prop_assert_eq!(
                serial.env().locations(), sim.env().locations(),
                "chunk bounds {:?}: final locations diverged", bounds
            );
            // The census merged from per-band deltas matches the serial
            // engine's — the SoA columns agree row for row.
            prop_assert_eq!(
                serial.role_census(), sim.role_census(),
                "chunk bounds {:?}: role census diverged", bounds
            );
            for idx in 0..n {
                prop_assert_eq!(
                    serial.colony().snapshot(idx),
                    sim.colony().snapshot(idx),
                    "chunk bounds {:?}: column row {} diverged", bounds, idx
                );
            }
        }
    }

    /// The round-level draw planes are bit-identical to the scalar
    /// oracle by construction: forcing the batched agent-state table
    /// from round 1 (`with_table_min_rounds(1)`) with plane consumption
    /// on (`with_draw_planes(true)` — it is opt-in) under adversarial
    /// chunk bounds and every covered thread count must reproduce the
    /// oracle exactly — across every colony family on the column path (simple,
    /// optimal, quality, spreader), with `agents()` reads interleaved
    /// mid-run so the lazy table → agent scatter is exercised at
    /// arbitrary step/run/read boundaries, not just run exits.
    #[test]
    fn forced_draw_planes_match_the_oracle_across_interleaved_reads(
        n in 4usize..72,
        k in 2usize..5,
        seed in any::<u64>(),
        family in 0usize..4,
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
        threads_pick in 0usize..3,
        ops in proptest::collection::vec(0usize..3, 1..10),
    ) {
        use house_hunting::core::{AgentSnapshot, SpreadStrategy};

        let threads = [1usize, 2, 8][threads_pick];
        let colony_of = || match family {
            0 => colony::simple(n, seed),
            1 => colony::optimal(n),
            2 => colony::quality(n, seed, 2.0),
            _ => colony::spreaders(n, seed, SpreadStrategy::Hybrid {
                search_probability: 0.5,
            }),
        };
        let build = |engine: EngineKind| -> Result<Simulation, SimError> {
            let mut spec = ScenarioSpec::new(n, QualitySpec::good_prefix(k, 1 + k / 2))
                .seed(seed);
            if family == 2 {
                spec = spec.reveal_quality_on_go();
            }
            Ok(spec.build_simulation(colony_of())?.with_engine(engine))
        };
        let mut bounds = vec![0];
        bounds.extend(cuts.iter().map(|cut| cut % (n + 1)));
        bounds.push(n);
        bounds.sort_unstable();

        let mut oracle = build(EngineKind::Scalar).unwrap();
        let mut soa = build(EngineKind::Soa)
            .unwrap()
            .with_round_threads(threads)
            .with_chunk_bounds(bounds)
            .with_table_min_rounds(1)
            .with_draw_planes(true);
        prop_assert!(
            soa.uses_agent_columns(),
            "family {} must ride the batched agent-state table", family
        );
        let rule = ConvergenceRule::commitment();
        let snapshots = |sim: &mut Simulation| -> Vec<AgentSnapshot> {
            // `agents()` forces the lazy table → agent scatter.
            sim.agents().iter().map(AgentSnapshot::of).collect()
        };
        for (at, &op) in ops.iter().enumerate() {
            match op {
                0 => {
                    let reference = oracle.step().unwrap();
                    let report = soa.step().unwrap();
                    prop_assert_eq!(
                        reference, report,
                        "op {}: step reports diverged", at
                    );
                }
                1 => {
                    let reference = oracle.run_to_convergence(rule, 5).unwrap();
                    let outcome = soa.run_to_convergence(rule, 5).unwrap();
                    prop_assert_eq!(
                        reference, outcome,
                        "op {}: run outcomes diverged", at
                    );
                }
                _ => {
                    prop_assert_eq!(
                        snapshots(&mut oracle), snapshots(&mut soa),
                        "op {}: scattered agents diverged from the oracle", at
                    );
                }
            }
            prop_assert_eq!(oracle.round(), soa.round());
            prop_assert_eq!(oracle.env().counts(), soa.env().counts());
            prop_assert_eq!(oracle.env().locations(), soa.env().locations());
            prop_assert_eq!(oracle.role_census(), soa.role_census());
        }
        prop_assert_eq!(
            snapshots(&mut oracle), snapshots(&mut soa),
            "final scatter diverged from the oracle"
        );
    }
}
