//! Perturbed colony: the Section 6 robustness story in one run.
//!
//! Subjects the two algorithms to the perturbations the paper discusses —
//! noisy population counts, crash faults, partial asynchrony (delays),
//! and Byzantine recruiters — with every cell assembled from registry
//! axes, and prints a success-rate grid. The paper's qualitative
//! prediction: the optimal algorithm, which "relies heavily on the
//! synchrony in the execution and the precise counting of the number of
//! ants", collapses, while the simple algorithm keeps working.
//!
//! ```text
//! cargo run --release --example perturbed_colony
//! ```

use house_hunting::analysis::{fmt_f64, Table};
use house_hunting::model::faults::CrashStyle;
use house_hunting::model::noise::CountNoise;
use house_hunting::prelude::*;
use house_hunting::sim::success_rate;

#[derive(Clone, Copy)]
enum Setup {
    Baseline,
    CountNoise(f64),
    Crashes(f64),
    Delays(f64),
    Byzantine(usize),
}

impl Setup {
    fn label(self) -> String {
        match self {
            Setup::Baseline => "baseline".into(),
            Setup::CountNoise(sigma) => format!("count noise σ={sigma}"),
            Setup::Crashes(frac) => format!("{:.0}% crash at r=10", frac * 100.0),
            Setup::Delays(p) => format!("{:.0}% delays", p * 100.0),
            Setup::Byzantine(count) => format!("{count} byzantine"),
        }
    }

    /// Maps the setup onto the registry's fault and mix axes.
    fn scenario(self, algorithm: Algorithm, n: usize) -> Scenario {
        let faults = match self {
            Setup::Crashes(fraction) => FaultSchedule::Crash {
                fraction,
                round: 10,
                style: CrashStyle::InPlace,
            },
            Setup::Delays(probability) => FaultSchedule::Delay { probability },
            _ => FaultSchedule::None,
        };
        let mix = match self {
            Setup::Byzantine(adversaries) => ColonyMix::Byzantine {
                algorithm,
                adversaries,
            },
            _ => ColonyMix::Uniform(algorithm),
        };
        let mut scenario = Scenario::custom(
            format!(
                "perturbed-{}-{}",
                self.label(),
                mix.primary_algorithm().label()
            ),
            n,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            faults,
            mix,
        )
        .rule(ConvergenceRule::stable_commitment(8))
        .max_rounds(30_000);
        if let Setup::CountNoise(sigma) = self {
            scenario = scenario.noise(NoiseModel {
                count: CountNoise::multiplicative(sigma).expect("valid sigma"),
                quality: Default::default(),
            });
        }
        scenario
    }
}

fn run(setup: Setup, algorithm: Algorithm, n: usize, trials: usize) -> Result<f64, SimError> {
    let outcomes = setup.scenario(algorithm, n).run_trials(trials)?;
    Ok(success_rate(&outcomes))
}

fn main() -> Result<(), SimError> {
    let n = 96;
    let trials = 8;
    println!(
        "robustness grid: n = {n}, k = 4 (2 good), {trials} trials per cell,\n\
         success = stable commitment consensus on a good nest\n"
    );

    let setups = [
        Setup::Baseline,
        Setup::CountNoise(0.3),
        Setup::Crashes(0.10),
        Setup::Delays(0.10),
        Setup::Byzantine(4),
    ];

    let mut table = Table::new(["perturbation", "optimal", "simple"]);
    for setup in setups {
        let optimal = run(setup, Algorithm::Optimal, n, trials)?;
        let simple = run(setup, Algorithm::Simple, n, trials)?;
        table.row([
            setup.label(),
            format!("{}%", fmt_f64(optimal * 100.0, 0)),
            format!("{}%", fmt_f64(simple * 100.0, 0)),
        ]);
    }
    println!("{table}");
    println!("expected shape: both near 100% at baseline; the optimal algorithm degrades");
    println!("under noise/delays (it needs exact counts and lockstep cycles) while the");
    println!("simple algorithm stays high — the paper's Section 6 robustness claim");
    Ok(())
}
