//! Perturbed colony: the Section 6 robustness story in one run.
//!
//! Subjects the two algorithms to the perturbations the paper discusses —
//! noisy population counts, crash faults, partial asynchrony (delays),
//! and Byzantine recruiters — and prints a success-rate grid. The paper's
//! qualitative prediction: the optimal algorithm, which "relies heavily
//! on the synchrony in the execution and the precise counting of the
//! number of ants", collapses, while the simple algorithm keeps working.
//!
//! ```text
//! cargo run --release --example perturbed_colony
//! ```

use house_hunting::analysis::{fmt_f64, Table};
use house_hunting::model::faults::{CrashPlan, CrashStyle, DelayPlan};
use house_hunting::model::noise::CountNoise;
use house_hunting::prelude::*;
use house_hunting::sim::{run_trials, success_rate};

#[derive(Clone, Copy)]
enum Setup {
    Baseline,
    CountNoise(f64),
    Crashes(f64),
    Delays(f64),
    Byzantine(usize),
}

impl Setup {
    fn label(self) -> String {
        match self {
            Setup::Baseline => "baseline".into(),
            Setup::CountNoise(sigma) => format!("count noise σ={sigma}"),
            Setup::Crashes(frac) => format!("{:.0}% crash at r=10", frac * 100.0),
            Setup::Delays(p) => format!("{:.0}% delays", p * 100.0),
            Setup::Byzantine(count) => format!("{count} byzantine"),
        }
    }
}

fn run(setup: Setup, algorithm: &str, n: usize, trials: usize) -> Result<f64, SimError> {
    let k = 4;
    let rule = ConvergenceRule::stable_commitment(8);
    let outcomes = run_trials(trials, 30_000, rule, |trial| {
        let seed = 31_000 + trial as u64;
        let mut spec = ScenarioSpec::new(n, QualitySpec::good_prefix(k, 2)).seed(seed);
        match setup {
            Setup::Baseline | Setup::Byzantine(_) => {}
            Setup::CountNoise(sigma) => {
                spec = spec.noise(NoiseModel {
                    count: CountNoise::multiplicative(sigma).expect("valid sigma"),
                    quality: Default::default(),
                });
            }
            Setup::Crashes(frac) => {
                spec = spec.perturbations(Perturbations {
                    crash: CrashPlan::fraction(n, frac, 10, CrashStyle::InPlace, seed),
                    delay: DelayPlan::never(),
                });
            }
            Setup::Delays(p) => {
                spec = spec.perturbations(Perturbations {
                    crash: CrashPlan::none(n),
                    delay: DelayPlan::new(p, seed),
                });
            }
        }
        let mut agents = match algorithm {
            "optimal" => colony::optimal(n),
            _ => colony::simple(n, seed),
        };
        if let Setup::Byzantine(count) = setup {
            colony::plant_adversaries(&mut agents, count, |_| {
                Box::new(house_hunting::core::BadNestRecruiter::new())
            });
        }
        spec.build_simulation(agents)
    })?;
    Ok(success_rate(&outcomes))
}

fn main() -> Result<(), SimError> {
    let n = 96;
    let trials = 8;
    println!(
        "robustness grid: n = {n}, k = 4 (2 good), {trials} trials per cell,\n\
         success = stable commitment consensus on a good nest\n"
    );

    let setups = [
        Setup::Baseline,
        Setup::CountNoise(0.3),
        Setup::Crashes(0.10),
        Setup::Delays(0.10),
        Setup::Byzantine(4),
    ];

    let mut table = Table::new(["perturbation", "optimal", "simple"]);
    for setup in setups {
        let optimal = run(setup, "optimal", n, trials)?;
        let simple = run(setup, "simple", n, trials)?;
        table.row([
            setup.label(),
            format!("{}%", fmt_f64(optimal * 100.0, 0)),
            format!("{}%", fmt_f64(simple * 100.0, 0)),
        ]);
    }
    println!("{table}");
    println!("expected shape: both near 100% at baseline; the optimal algorithm degrades");
    println!("under noise/delays (it needs exact counts and lockstep cycles) while the");
    println!("simple algorithm stays high — the paper's Section 6 robustness claim");
    Ok(())
}
