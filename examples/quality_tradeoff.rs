//! Quality trade-off: Section 6's non-binary nest qualities.
//!
//! Two candidate nests of quality 0.9 and 0.6, expressed as an explicit
//! registry quality profile. The quality-weighted agent recruits with
//! probability `(count/n)·qᵞ`; sweeping the selectivity exponent `γ`
//! traces the classic speed/accuracy trade-off observed in real
//! Temnothorax colonies (Pratt & Sumpter 2006): higher `γ` picks the
//! better nest more reliably but takes longer to decide.
//!
//! ```text
//! cargo run --release --example quality_tradeoff
//! ```

use house_hunting::analysis::{fmt_f64, Summary, Table};
use house_hunting::model::Quality;
use house_hunting::prelude::*;
use house_hunting::sim::success_rate;

fn main() -> Result<(), SimError> {
    let n = 128;
    let trials = 16;
    let qualities = [0.9, 0.6];
    println!("speed/accuracy trade-off: n = {n}, nest qualities {qualities:?}, {trials} trials\n");

    let profile = QualityProfile::Explicit(
        qualities
            .iter()
            .map(|&q| Quality::new(q).expect("valid quality"))
            .collect(),
    );

    let mut table = Table::new(["gamma", "P[best nest wins]", "mean rounds", "success"]);
    for gamma in [0.0, 1.0, 2.0, 4.0] {
        let scenario = Scenario::custom(
            format!("quality-tradeoff-gamma{gamma}"),
            n,
            profile.clone(),
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Quality { gamma }),
        )
        .max_rounds(40_000);
        let outcomes = scenario.run_trials(trials)?;
        let best_wins = outcomes
            .iter()
            .filter(|o| {
                o.solved
                    .as_ref()
                    .is_some_and(|s| s.nest == NestId::candidate(1))
            })
            .count();
        let solved = outcomes
            .iter()
            .filter(|o| o.solved.is_some())
            .count()
            .max(1);
        let rounds: Summary = outcomes
            .iter()
            .filter_map(|o| o.solved.as_ref().map(|s| s.round as f64))
            .collect();
        table.row([
            fmt_f64(gamma, 1),
            format!("{}%", fmt_f64(best_wins as f64 / solved as f64 * 100.0, 0)),
            fmt_f64(rounds.mean(), 1),
            format!("{}%", fmt_f64(success_rate(&outcomes) * 100.0, 0)),
        ]);
    }
    println!("{table}");
    println!("expected shape: γ = 0 ignores quality (best nest wins ≈ half the time,");
    println!("fast); growing γ pushes P[best] toward 100% at the cost of more rounds");
    Ok(())
}
