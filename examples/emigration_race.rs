//! Emigration race: the paper's two algorithms (plus the Section 6
//! adaptive variant) on identical habitats.
//!
//! For each of several colony sizes, runs the optimal `O(log n)`
//! algorithm, the simple `O(k log n)` algorithm, and the adaptive-rate
//! variant over the same instances and reports mean rounds to consensus —
//! the headline comparison of the paper (optimal wins; the gap grows with
//! `k`; see experiments F3–F7 for the full sweeps).
//!
//! ```text
//! cargo run --release --example emigration_race
//! ```

use house_hunting::analysis::{fmt_f64, Summary, Table};
use house_hunting::prelude::*;
use house_hunting::sim::{run_trials, solved_rounds, success_rate};

fn mean_rounds(
    label: &str,
    n: usize,
    k: usize,
    trials: usize,
    build_colony: impl Fn(u64) -> Vec<BoxedAgent> + Sync,
) -> Result<(f64, f64), SimError> {
    let rule = ConvergenceRule::commitment();
    let outcomes = run_trials(trials, 60_000, rule, |trial| {
        let seed = 7_000 + trial as u64;
        ScenarioSpec::new(n, QualitySpec::good_prefix(k, k / 2))
            .seed(seed)
            .build_simulation(build_colony(seed))
    })?;
    let rate = success_rate(&outcomes);
    assert!(
        rate > 0.0,
        "{label}: no successful trial at n={n}, k={k} — raise the round budget"
    );
    let rounds: Summary = solved_rounds(&outcomes).into_iter().collect();
    Ok((rounds.mean(), rate))
}

fn main() -> Result<(), SimError> {
    let k = 8;
    let trials = 10;
    println!(
        "emigration race: k = {k} nests ({} good), {trials} trials per cell\n",
        k / 2
    );

    let mut table = Table::new([
        "n",
        "optimal (rounds)",
        "simple (rounds)",
        "adaptive (rounds)",
        "simple/optimal",
    ]);
    for n in [128usize, 256, 512, 1024] {
        let (optimal, _) = mean_rounds("optimal", n, k, trials, |_| colony::optimal(n))?;
        let (simple, _) = mean_rounds("simple", n, k, trials, |seed| colony::simple(n, seed))?;
        let (adaptive, _) =
            mean_rounds("adaptive", n, k, trials, |seed| colony::adaptive(n, seed))?;
        table.row([
            n.to_string(),
            fmt_f64(optimal, 1),
            fmt_f64(simple, 1),
            fmt_f64(adaptive, 1),
            fmt_f64(simple / optimal, 1),
        ]);
    }
    println!("{table}");
    println!("expected shape: optimal ≈ a·log n and smallest; simple pays the ×k factor;");
    println!("adaptive sits between them (its advantage grows with k — see experiment F13)");
    Ok(())
}
