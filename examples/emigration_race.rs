//! Emigration race: the paper's two algorithms (plus the Section 6
//! adaptive variant) on identical habitats.
//!
//! For each of several colony sizes, assembles a registry scenario per
//! algorithm from the same axes (good-prefix habitat, no faults, uniform
//! colony), runs the trials, and reports mean rounds to consensus — the
//! headline comparison of the paper (optimal wins; the gap grows with
//! `k`; see experiments F3–F7 for the full sweeps).
//!
//! ```text
//! cargo run --release --example emigration_race
//! ```

use house_hunting::analysis::{fmt_f64, Summary, Table};
use house_hunting::prelude::*;
use house_hunting::sim::{solved_rounds, success_rate};

fn race_scenario(n: usize, k: usize, algorithm: Algorithm) -> Scenario {
    let rule = match algorithm {
        Algorithm::Optimal => ConvergenceRule::all_final(),
        _ => ConvergenceRule::commitment(),
    };
    Scenario::custom(
        format!("race-{}-{n}", algorithm.label()),
        n,
        QualityProfile::GoodPrefix { k, good: k / 2 },
        FaultSchedule::None,
        ColonyMix::Uniform(algorithm),
    )
    .rule(rule)
    .max_rounds(60_000)
}

fn mean_rounds(scenario: &Scenario, trials: usize) -> Result<(f64, f64), SimError> {
    let outcomes = scenario.run_trials(trials)?;
    let rate = success_rate(&outcomes);
    assert!(
        rate > 0.0,
        "{}: no successful trial — raise the round budget",
        scenario.name()
    );
    let rounds: Summary = solved_rounds(&outcomes).into_iter().collect();
    Ok((rounds.mean(), rate))
}

fn main() -> Result<(), SimError> {
    let k = 8;
    let trials = 10;
    println!(
        "emigration race: k = {k} nests ({} good), {trials} trials per cell\n",
        k / 2
    );

    let mut table = Table::new([
        "n",
        "optimal (rounds)",
        "simple (rounds)",
        "adaptive (rounds)",
        "simple/optimal",
    ]);
    for n in [128usize, 256, 512, 1024] {
        let (optimal, _) = mean_rounds(&race_scenario(n, k, Algorithm::Optimal), trials)?;
        let (simple, _) = mean_rounds(&race_scenario(n, k, Algorithm::Simple), trials)?;
        let (adaptive, _) = mean_rounds(&race_scenario(n, k, Algorithm::Adaptive), trials)?;
        table.row([
            n.to_string(),
            fmt_f64(optimal, 1),
            fmt_f64(simple, 1),
            fmt_f64(adaptive, 1),
            fmt_f64(simple / optimal, 1),
        ]);
    }
    println!("{table}");
    println!("expected shape: optimal ≈ a·log n and smallest; simple pays the ×k factor;");
    println!("adaptive sits between them (its advantage grows with k — see experiment F13)");
    Ok(())
}
