//! Adaptive colony: Section 6's "improved running time" sketch, measured.
//!
//! Sweeps the number of candidate nests `k` at fixed colony size and
//! compares the simple `count/n` rule against the adaptive
//! `k̃(r)`-boosted rule, with each cell assembled from registry axes
//! (all-good habitat — pure competition, the hardest case for
//! convergence speed). The simple algorithm's `O(k log n)` cost shows up
//! as near-linear growth in `k`; the adaptive schedule flattens it.
//!
//! ```text
//! cargo run --release --example adaptive_colony
//! ```

use house_hunting::analysis::{fmt_f64, Summary, Table};
use house_hunting::prelude::*;
use house_hunting::sim::{solved_rounds, success_rate};

fn measure(
    n: usize,
    k: usize,
    trials: usize,
    algorithm: Algorithm,
) -> Result<(f64, f64), SimError> {
    let scenario = Scenario::custom(
        format!("adaptive-sweep-{}-k{k}", algorithm.label()),
        n,
        QualityProfile::AllGood { k },
        FaultSchedule::None,
        ColonyMix::Uniform(algorithm),
    )
    .max_rounds(80_000);
    let outcomes = scenario.run_trials(trials)?;
    let rounds: Summary = solved_rounds(&outcomes).into_iter().collect();
    Ok((rounds.mean(), success_rate(&outcomes)))
}

fn main() -> Result<(), SimError> {
    let n = 512;
    let trials = 8;
    println!("adaptive vs simple across k (n = {n}, all nests good, {trials} trials)\n");

    let mut table = Table::new(["k", "simple (rounds)", "adaptive (rounds)", "speedup"]);
    for k in [2usize, 4, 8, 16] {
        let (simple, s_rate) = measure(n, k, trials, Algorithm::Simple)?;
        let (adaptive, a_rate) = measure(n, k, trials, Algorithm::Adaptive)?;
        assert!(
            s_rate > 0.0 && a_rate > 0.0,
            "k={k}: a variant never converged"
        );
        table.row([
            k.to_string(),
            fmt_f64(simple, 1),
            fmt_f64(adaptive, 1),
            format!("{}x", fmt_f64(simple / adaptive, 2)),
        ]);
    }
    println!("{table}");
    println!("expected shape: the simple column grows ≈ linearly with k;");
    println!("the adaptive column grows much slower, so the speedup widens with k");
    Ok(())
}
