//! Quickstart: one colony, one emigration, narrated.
//!
//! Pulls the `baseline-128` scenario from the registry, runs the paper's
//! simple algorithm (Algorithm 3) on it, and prints the population
//! dynamics as the colony converges on a good nest.
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example quickstart -- <scenario-name>   # any catalog entry
//! ```

use house_hunting::analysis::sparkline;
use house_hunting::prelude::*;
use house_hunting::sim::SeriesRecorder;

fn print_catalog() {
    for s in registry::all_scenarios() {
        println!("  {:<28} {}", s.name(), s.summary_text());
    }
}

fn main() -> Result<(), SimError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "baseline-128".to_string());
    if name == "list" {
        println!("registered scenarios:");
        print_catalog();
        return Ok(());
    }
    let scenario = registry::lookup(&name).unwrap_or_else(|| {
        eprintln!("unknown scenario {name:?}; run with `list` to see the catalog:");
        print_catalog();
        std::process::exit(2);
    });

    let n = scenario.n();
    let k = scenario.k();
    let seed = scenario.base_seed();
    println!(
        "scenario {:?}: {}",
        scenario.name(),
        scenario.summary_text()
    );

    let mut sim = scenario.build(seed)?;
    let mut recorder = SeriesRecorder::new();
    let outcome = sim.run_observed(
        scenario.convergence_rule(),
        scenario.round_budget(),
        |sim, _| {
            recorder.record(sim);
        },
    )?;

    let Some(solved) = outcome.solved else {
        // Some catalog entries (e.g. all-crash-collapse-32) exist to
        // demonstrate non-convergence.
        println!(
            "no consensus within the {}-round budget ({} actions replaced by fault no-ops)",
            scenario.round_budget(),
            outcome.replaced_actions
        );
        assert!(
            !scenario.expects_convergence(),
            "scenario declared convergent but did not converge"
        );
        return Ok(());
    };
    println!("colony of {n} ants, {k} candidate nests");
    println!(
        "consensus: all ants committed to {} after {} rounds\n",
        solved.nest, solved.round
    );

    let good: Vec<bool> = sim
        .env()
        .nests()
        .iter()
        .map(|nest| nest.quality().is_good())
        .collect();
    println!("committed-population traces (one row per candidate nest):");
    for nest in 1..=k {
        let series: Vec<f64> = recorder
            .snapshots()
            .iter()
            .map(|s| s.committed[nest - 1] as f64)
            .collect();
        let final_count = *series.last().unwrap() as usize;
        let quality = if good[nest - 1] { "good" } else { "bad " };
        println!(
            "  n{nest} ({quality})  {}  final {final_count:>4}",
            sparkline(&series)
        );
    }

    println!("\ncompeting nests per round:");
    let competing: Vec<f64> = recorder
        .competing_series()
        .iter()
        .map(|&c| c as f64)
        .collect();
    println!("  {}", sparkline(&competing));
    let good_count = good.iter().filter(|g| **g).count();
    println!(
        "  (starts at ≤ {} good nests, ends at exactly 1)",
        good_count.max(1)
    );
    Ok(())
}
