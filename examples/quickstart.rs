//! Quickstart: one colony, one emigration, narrated.
//!
//! Runs the paper's simple algorithm (Algorithm 3) on a single
//! house-hunting instance and prints the population dynamics as the
//! colony converges on a good nest.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use house_hunting::analysis::sparkline;
use house_hunting::prelude::*;
use house_hunting::sim::SeriesRecorder;

fn main() -> Result<(), SimError> {
    // A colony of 128 ants; 6 candidate nests, 2 of them good.
    let n = 128;
    let k = 6;
    let seed = 2015; // the year the paper appeared
    let spec = ScenarioSpec::new(n, QualitySpec::good_prefix(k, 2)).seed(seed);

    let mut sim = spec.build_simulation(colony::simple(n, seed))?;
    let mut recorder = SeriesRecorder::new();
    let outcome = sim.run_observed(ConvergenceRule::commitment(), 20_000, |sim, _| {
        recorder.record(sim);
    })?;

    let solved = outcome
        .solved
        .expect("a healthy colony always finds a home");
    println!("colony of {n} ants, {k} candidate nests (n1, n2 good)");
    println!(
        "consensus: all ants committed to {} after {} rounds\n",
        solved.nest, solved.round
    );

    println!("committed-population traces (one row per candidate nest):");
    for nest in 1..=k {
        let series: Vec<f64> = recorder
            .snapshots()
            .iter()
            .map(|s| s.committed[nest - 1] as f64)
            .collect();
        let final_count = *series.last().unwrap() as usize;
        let quality = if nest <= 2 { "good" } else { "bad " };
        println!(
            "  n{nest} ({quality})  {}  final {final_count:>4}",
            sparkline(&series)
        );
    }

    println!("\ncompeting nests per round:");
    let competing: Vec<f64> = recorder
        .competing_series()
        .iter()
        .map(|&c| c as f64)
        .collect();
    println!("  {}", sparkline(&competing));
    println!("  (starts at ≤ {} good nests, ends at exactly 1)", 2.min(k));
    Ok(())
}
